// Lockstep batch kernel: K replications of one eligible scenario in a
// single task (see lockstep.hpp for the contract, lane_stepper.hpp for the
// slot-order/tie-break reproduction argument).
//
// Two-level drain structure.  Between reallocation ticks the dedicated-rate
// server's classes are independent: rates only change at ticks (or, under
// kFinishAtOldRate, to the tick-published pending value), and every other
// piece of state — queue, slot, draw block, metrics accumulators — is
// per-class.  The kernel exploits that:
//
//   1. drain_class() bursts one (lane, class) pair through all its events
//      strictly before the chunk boundary in a register-resident two-clock
//      loop: no 5-slot scan, all indexing hoisted out of the loop, queued
//      requests stored as compact {id, arrival, size} entries.
//   2. generic_drain() — the 5-slot first-minimum scan — then handles the
//      reallocation tick and any events tied exactly at the boundary
//      (cascades included), in full per-task slot order.
//
// Bitwise identity is preserved because per-class event order is exactly
// the per-task order projected onto that class, and cross-class event order
// only ever influences the request-record vector — so when request
// recording is on, step_lane() takes the generic scan for the whole run.
//
// The hot-path collaborators (WaitingQueue, MetricsCollector,
// LoadEstimator) are mirrored inline rather than called: same state, same
// statement order, same floating-point arithmetic — the mirrors exist so
// the accumulators can live in registers inside drain_class().  Quantities
// a mirror tracks that RunResult never reads (queue occupancy stats, the
// estimator's work-rate series) are dropped or accumulated in a cheaper
// order; everything RunResult reads is op-for-op identical.  The
// equivalence tests in tests/test_lockstep.cpp pin all of this against
// run_scenario bit for bit.
#include "experiment/lockstep.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "dist/lane_block.hpp"
#include "experiment/scenario_build.hpp"
#include "server/allocator.hpp"
#include "server/metrics.hpp"
#include "sim/lane_stepper.hpp"
#include "stats/online.hpp"

namespace psd {

bool lockstep_eligible(const ScenarioConfig& cfg) {
  // Admission gates hook Server::submit (shed bookkeeping the kernel's
  // per-class mirrors don't reproduce), so gated configs take the per-lane
  // fallback path.
  return cfg.cluster_nodes == 1 && cfg.backend == BackendKind::kDedicated &&
         !cfg.admission.active();
}

namespace {

// Same completion-time floor as sched/dedicated_rate.cpp: a paused class
// (rate ~ 0) must keep a finite completion time.
constexpr double kMinRate = 1e-9;

/// A waiting request carries only what service assignment needs; the
/// service-time fields are filled in at pop.  (WaitingQueue's occupancy
/// statistics are not part of RunResult, so a stat-free ring is
/// bitwise-equivalent.)
struct QEntry {
  RequestId id;
  Time arrival;
  Work size;
};

/// Power-of-two FCFS ring, same storage discipline as WaitingQueue.
struct Ring {
  std::vector<QEntry> buf;
  std::uint64_t head = 0, tail = 0, mask = 0;

  bool empty() const { return head == tail; }
  void push(const QEntry& r) {
    if (tail - head == buf.size()) grow();
    buf[tail & mask] = r;
    ++tail;
  }
  const QEntry& pop_front() {
    const QEntry& r = buf[head & mask];
    ++head;
    return r;
  }
  void grow() {
    const std::size_t n = static_cast<std::size_t>(tail - head);
    std::vector<QEntry> next(buf.empty() ? 16 : buf.size() * 2);
    for (std::size_t i = 0; i < n; ++i) next[i] = buf[(head + i) & mask];
    buf = std::move(next);
    mask = buf.size() - 1;
    head = 0;
    tail = n;
  }
};

/// Inline mirror of IntervalSeries: same state, same roll arithmetic
/// (stats/interval_series.cpp), so window records match bit for bit.
struct SeriesMirror {
  Time current_start = 0.0;
  Duration window = 1.0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  std::vector<IntervalStat> windows;

  void add(Time t, double v) {
    if (t < current_start) t = current_start;  // clamp clock jitter
    while (t >= current_start + window) close_window();
    ++count;
    sum += v;
    max = std::max(max, v);
  }
  void close_window() {
    IntervalStat s;
    s.start = current_start;
    s.count = count;
    s.mean = count ? sum / static_cast<double>(count) : 0.0;
    s.max = count ? max : 0.0;
    windows.push_back(s);
    current_start += window;
    count = 0;
    sum = 0.0;
    max = 0.0;
  }
  void finalize() {
    if (count > 0) {
      IntervalStat s;
      s.start = current_start;
      s.count = count;
      s.mean = sum / static_cast<double>(count);
      s.max = max;
      windows.push_back(s);
    }
  }
};

/// One archived estimator window (LoadEstimator::WindowCounters mirror).
struct EstWindow {
  std::vector<std::uint64_t> arrivals;
  std::vector<double> work;
  Duration length = 0.0;
};

/// All mutable state of one replication lane.
struct Lane {
  struct Slot {
    Request current;
    Work remaining = 0.0;
    Time last_settle = 0.0;
    bool busy = false;
  };

  std::vector<Rng> gen_rng;              ///< One per class (run_rng.fork(i)).
  std::vector<ArrivalVariant> arrivals;  ///< Value copies of the prototypes.
  std::vector<std::uint64_t> gen_count;  ///< Requests generated per class.
  std::vector<Ring> queues;
  std::vector<Slot> slots;

  // MetricsCollector mirror: whole-run accumulators + per-window series.
  std::vector<MeanStat> m_slowdown, m_delay, m_service;
  std::vector<SeriesMirror> series;
  std::vector<Request> records;

  // LoadEstimator mirror.  est_work is accumulated per burst rather than
  // per arrival — a different FP summation order than the per-task path,
  // which is safe because only the count-based lambda estimate (integer
  // counts / window length) ever reaches the allocator or RunResult.
  Time est_window_start = 0.0;
  std::vector<std::uint64_t> est_arrivals;
  std::vector<double> est_work;
  std::deque<EstWindow> est_closed;

  std::unique_ptr<RateAllocator> allocator;
  std::vector<double> rates;
  std::vector<double> pending_rates;  ///< kFinishAtOldRate adoption buffer.
  std::uint64_t submitted = 0;
  std::uint64_t reallocs = 0;

  Lane(const ServerConfig& sc, std::size_t n)
      : gen_count(n, 0),
        queues(n),
        slots(n),
        m_slowdown(n),
        m_delay(n),
        m_service(n),
        series(n),
        est_arrivals(n, 0),
        est_work(n, 0.0) {
    for (auto& s : series) {
      s.current_start = sc.metrics.warmup_end;
      s.window = sc.metrics.window;
    }
  }

  /// LoadEstimator::lambda_estimate, mirrored.
  std::vector<double> lambda_estimate(std::size_t n) const {
    std::vector<double> est(n, 0.0);
    if (est_closed.empty()) return est;
    Duration total_time = 0.0;
    std::vector<double> counts(n, 0.0);
    for (const auto& w : est_closed) {
      total_time += w.length;
      for (std::size_t i = 0; i < n; ++i) {
        counts[i] += static_cast<double>(w.arrivals[i]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) est[i] = counts[i] / total_time;
    return est;
  }

  /// MetricsCollector::last_window_slowdowns, mirrored.
  std::vector<double> last_window_slowdowns(std::size_t n) const {
    std::vector<double> out(n, kNaN);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& w = series[i].windows;
      if (!w.empty() && w.back().count > 0) out[i] = w.back().mean;
    }
    return out;
  }
};

/// The lane-stepped replication kernel for eligible (single-node,
/// dedicated-rate) scenarios.  Slot layout per lane — the index order IS the
/// per-task tie-break order (see lane_stepper.hpp):
///   [0]        reallocation tick (a heap event in the per-task path),
///   [1..n]     per-class arrival streams (tie rank 0),
///   [n+1..2n]  per-class completion streams (tie rank 1).
class LockstepKernel {
 public:
  LockstepKernel(const ScenarioConfig& cfg, std::uint64_t first_run_index,
                 std::size_t lanes)
      : cfg_(cfg),
        dist_(make_sampler(cfg.size_dist)),
        unit_(dist_.mean() / cfg.capacity),
        n_(cfg.num_classes()),
        sc_(detail::node_server_config(cfg, unit_)),
        realloc_on_(sc_.realloc_period > 0.0),
        finish_at_old_(cfg.rate_change == RateChangePolicy::kFinishAtOldRate),
        clocks_(lanes, 2 * n_ + 1),
        blocks_(lanes, n_) {
    // Shared immutable tables: one sampler (ziggurat/alias data shared by
    // every lane through its value copy) and one arrival prototype per
    // class; a lane's arrival process is a plain value copy carrying the
    // prototype's initial phase state.
    const auto lambdas = cfg.true_lambdas();
    std::vector<ArrivalVariant> protos;
    protos.reserve(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      protos.push_back(detail::scenario_arrivals(cfg, lambdas[i], unit_));
    }

    lanes_.reserve(lanes);
    Rng master(cfg.seed);
    for (std::size_t l = 0; l < lanes; ++l) {
      // Same stream derivation as run_scenario: run_rng = master.fork(index),
      // generator i draws from run_rng.fork(i).  (The per-task path also
      // forks index 1000 for the server; the dedicated backend never uses
      // it, and fork() is const, so skipping it changes nothing.)
      const Rng run_rng = master.fork(first_run_index + l);
      Lane lane(sc_, n_);
      for (std::size_t i = 0; i < n_; ++i) {
        lane.gen_rng.push_back(run_rng.fork(i));
      }
      lane.arrivals = protos;
      lane.allocator = detail::make_scenario_allocator(cfg, dist_.mean());
      // Server ctor: equal initial split, pushed through set_rates — which
      // under kFinishAtOldRate also primes the pending vector.
      lane.rates.assign(n_, cfg.capacity / static_cast<double>(n_));
      if (finish_at_old_) {
        lane.pending_rates = lane.rates;
      }
      lanes_.push_back(std::move(lane));

      Time* clocks = clocks_.lane(l);
      clocks[0] = realloc_on_ ? sc_.realloc_period : kInf;  // origin 0.0
      for (std::size_t i = 0; i < n_; ++i) {
        // RequestGenerator::start(0.0): first arrival one gap after origin.
        clocks[1 + i] = 0.0 + next_gap(l, i);
        clocks[1 + n_ + i] = kInf;  // completion slots idle until service
      }
    }
  }

  std::vector<RunResult> run() {
    const Time horizon = (cfg_.warmup_tu + cfg_.measure_tu) * unit_;
    // Chunk granularity: one control window when the reallocation loop is
    // on (every lane crosses each window together, so estimator/allocator
    // work interleaves identically across lanes), else a fixed split.
    const Duration chunk =
        realloc_on_ ? sc_.realloc_period : horizon / 64.0;
    clocks_.run_lockstep(horizon, chunk, [this](std::size_t l, Time limit) {
      step_lane(l, limit);
    });

    std::vector<RunResult> out;
    out.reserve(lanes_.size());
    for (Lane& lane : lanes_) {
      for (auto& s : lane.series) s.finalize();
      out.push_back(collect(lane));
    }
    return out;
  }

 private:
  /// Buffered next interarrival gap for (lane, class) — the generator's
  /// next_gap(): refill on block exhaustion, read without consuming.
  double next_gap(std::size_t l, std::size_t cls) {
    if (blocks_.cursor(l, cls) == LaneDrawBlocks::kBatch) {
      blocks_.refill(l, cls, lanes_[l].arrivals[cls], dist_,
                     lanes_[l].gen_rng[cls]);
    }
    return blocks_.gap_slice(l, cls)[blocks_.cursor(l, cls)];
  }

  void step_lane(std::size_t l, Time limit) {
    // Request records are the one output ordered by cross-class completion
    // time; burst-draining classes one at a time would reorder them, so a
    // recording run takes the generic scan throughout.
    if (!sc_.metrics.record_requests) {
      for (std::size_t c = 0; c < n_; ++c) drain_class(l, c, limit);
    }
    generic_drain(l, limit);
  }

  /// Burst-drain one (lane, class) pair's events with fire time strictly
  /// before `T` (the chunk boundary = next tick time).  The projected
  /// per-class event order equals the per-task order: within a class,
  /// events sort by time with arrivals beating completions at ties (slot
  /// 1+c < slot 1+n+c), and no state this loop touches is shared across
  /// classes.  Events tied exactly at T are left to generic_drain, which
  /// fires them after the tick in full slot order.
  void drain_class(std::size_t l, std::size_t c, Time T) {
    Time* clocks = clocks_.lane(l);
    Time arr_t = clocks[1 + c];
    Time comp_t = clocks[1 + n_ + c];
    if (!(arr_t < T) && !(comp_t < T)) return;

    Lane& lane = lanes_[l];
    Lane::Slot& slot = lane.slots[c];
    bool busy = slot.busy;
    RequestId cur_id = slot.current.id;
    Time cur_arrival = slot.current.arrival;
    Work cur_size = slot.current.size;
    Time cur_sstart = slot.current.service_start;
    Work remaining = slot.remaining;
    Time last_settle = slot.last_settle;
    // Between ticks the class rate is constant except for the one-shot
    // pending-rate adoption a completion performs under kFinishAtOldRate.
    double rate = lane.rates[c];
    const bool fin = finish_at_old_ && !lane.pending_rates.empty();
    const double pending_c = fin ? lane.pending_rates[c] : 0.0;

    std::uint32_t cursor = blocks_.cursor(l, c);
    const double* gaps = blocks_.gap_slice(l, c);
    const double* sizes = blocks_.size_slice(l, c);
    std::uint64_t gen = lane.gen_count[c];
    std::uint64_t arrivals_seen = 0;
    std::uint64_t est_count = 0;
    double est_work = 0.0;

    MeanStat sd_stat = lane.m_slowdown[c];
    MeanStat dl_stat = lane.m_delay[c];
    MeanStat sv_stat = lane.m_service[c];
    SeriesMirror& series = lane.series[c];
    Time win_start = series.current_start;
    const Duration win_len = series.window;
    std::uint64_t win_count = series.count;
    double win_sum = series.sum;
    double win_max = series.max;
    const Time warmup_end = sc_.metrics.warmup_end;

    Ring& ring = lane.queues[c];
    const RequestId id_hi = static_cast<RequestId>(c) << 48;
    const bool est_on = realloc_on_;

    for (;;) {
      if (arr_t <= comp_t) {  // arrival wins ties (slot order)
        if (!(arr_t < T)) break;
        const Time t = arr_t;
        const double size = sizes[cursor];
        ++cursor;
        const RequestId id = id_hi | gen;
        ++gen;
        ++arrivals_seen;
        if (est_on) {
          ++est_count;
          est_work += size;
        }
        if (busy) {
          ring.push({id, t, size});
        } else {
          cur_id = id;
          cur_arrival = t;
          cur_size = size;
          cur_sstart = t;
          remaining = size;
          last_settle = t;
          busy = true;
          comp_t = t + remaining / std::max(rate, kMinRate);
        }
        if (cursor == LaneDrawBlocks::kBatch) {
          blocks_.refill(l, c, lane.arrivals[c], dist_, lane.gen_rng[c]);
          cursor = 0;
        }
        arr_t = t + gaps[cursor];
      } else {  // completion
        if (!(comp_t < T)) break;
        const Time t = comp_t;
        const Duration service_elapsed = t - cur_sstart;
        busy = false;
        remaining = 0.0;
        if (fin) rate = pending_c;
        // MetricsCollector::on_complete, register-resident.
        if (t >= warmup_end) {
          const Duration delay = cur_sstart - cur_arrival;
          const double sd = delay / service_elapsed;
          sd_stat.add(sd);
          dl_stat.add(delay);
          sv_stat.add(service_elapsed);
          Time tt = t;
          if (tt < win_start) tt = win_start;
          while (tt >= win_start + win_len) {  // IntervalSeries::roll_to
            IntervalStat s;
            s.start = win_start;
            s.count = win_count;
            s.mean = win_count
                         ? win_sum / static_cast<double>(win_count)
                         : 0.0;
            s.max = win_count ? win_max : 0.0;
            series.windows.push_back(s);
            win_start += win_len;
            win_count = 0;
            win_sum = 0.0;
            win_max = 0.0;
          }
          ++win_count;
          win_sum += sd;
          win_max = std::max(win_max, sd);
        }
        if (!ring.empty()) {
          const QEntry e = ring.pop_front();
          cur_id = e.id;
          cur_arrival = e.arrival;
          cur_size = e.size;
          cur_sstart = t;
          remaining = e.size;
          last_settle = t;
          busy = true;
          comp_t = t + remaining / std::max(rate, kMinRate);
        } else {
          comp_t = kInf;
        }
      }
    }

    clocks[1 + c] = arr_t;
    clocks[1 + n_ + c] = comp_t;
    slot.busy = busy;
    slot.current.id = cur_id;
    slot.current.cls = static_cast<ClassId>(c);
    slot.current.arrival = cur_arrival;
    slot.current.size = cur_size;
    slot.current.service_start = cur_sstart;
    slot.remaining = remaining;
    slot.last_settle = last_settle;
    lane.rates[c] = rate;
    blocks_.cursor(l, c) = cursor;
    lane.gen_count[c] = gen;
    lane.submitted += arrivals_seen;
    lane.est_arrivals[c] += est_count;
    lane.est_work[c] += est_work;
    lane.m_slowdown[c] = sd_stat;
    lane.m_delay[c] = dl_stat;
    lane.m_service[c] = sv_stat;
    series.current_start = win_start;
    series.count = win_count;
    series.sum = win_sum;
    series.max = win_max;
  }

  /// Drain one lane's remaining events with fire_time <= limit in full
  /// per-task order: earliest time first, slot index breaking ties.  After
  /// the burst drains this fires the reallocation tick and any boundary
  /// ties; with request recording on it carries the whole run.
  void generic_drain(std::size_t l, Time limit) {
    Time* clocks = clocks_.lane(l);
    Lane& lane = lanes_[l];
    const std::size_t slots = 2 * n_ + 1;
    for (;;) {
      const std::size_t s = LaneClockGrid::next_slot(clocks, slots);
      const Time t = clocks[s];
      if (!(t <= limit)) return;
      if (s == 0) {
        realloc_tick(lane, clocks, t);
      } else if (s <= n_) {
        arrive(l, lane, clocks, s - 1, t);
      } else {
        complete(lane, clocks, s - 1 - n_, t);
      }
    }
  }

  /// RequestGenerator::arrive + Server::submit + DedicatedRateBackend
  /// notify_arrival/start_service, flattened.  When the class's task server
  /// is idle its queue is empty (the backend starts service immediately on
  /// arrival), so the push/pop ring round-trip is pure bookkeeping — the
  /// kernel starts service on the arriving request directly; queue-internal
  /// occupancy stats are not part of RunResult.
  void arrive(std::size_t l, Lane& lane, Time* clocks, std::size_t cls,
              Time t) {
    auto& cursor = blocks_.cursor(l, cls);
    Request req;
    req.id = (static_cast<RequestId>(cls) << 48) | lane.gen_count[cls];
    req.cls = static_cast<ClassId>(cls);
    req.arrival = t;
    req.size = blocks_.size_slice(l, cls)[cursor];
    ++cursor;
    ++lane.gen_count[cls];

    ++lane.submitted;
    if (realloc_on_) {
      ++lane.est_arrivals[cls];
      lane.est_work[cls] += req.size;
    }
    Lane::Slot& slot = lane.slots[cls];
    if (slot.busy) {
      lane.queues[cls].push({req.id, req.arrival, req.size});
    } else {
      slot.current = req;
      slot.current.service_start = t;
      slot.remaining = req.size;
      slot.last_settle = t;
      slot.busy = true;
      schedule_completion(lane, clocks, cls, t);
    }
    clocks[1 + cls] = t + next_gap(l, cls);
  }

  /// DedicatedRateBackend::complete + start_service, flattened.
  void complete(Lane& lane, Time* clocks, std::size_t cls, Time t) {
    Lane::Slot& slot = lane.slots[cls];
    PSD_CHECK(slot.busy, "completion for idle lane slot");
    Request done = slot.current;
    done.departure = t;
    done.service_elapsed = t - done.service_start;
    slot.busy = false;
    slot.remaining = 0.0;
    if (finish_at_old_ && !lane.pending_rates.empty()) {
      lane.rates[cls] = lane.pending_rates[cls];
    }
    on_complete(lane, done);
    if (!lane.queues[cls].empty()) {
      const QEntry e = lane.queues[cls].pop_front();
      slot.current.id = e.id;
      slot.current.cls = static_cast<ClassId>(cls);
      slot.current.arrival = e.arrival;
      slot.current.size = e.size;
      slot.current.service_start = t;
      slot.remaining = e.size;
      slot.last_settle = t;
      slot.busy = true;
      schedule_completion(lane, clocks, cls, t);
    } else {
      clocks[1 + n_ + cls] = kInf;
    }
  }

  /// MetricsCollector::on_complete, mirrored (same statement order).
  void on_complete(Lane& lane, const Request& req) {
    if (req.departure < sc_.metrics.warmup_end) return;
    const double sd = req.slowdown();
    lane.m_slowdown[req.cls].add(sd);
    lane.m_delay[req.cls].add(req.delay());
    lane.m_service[req.cls].add(req.service_elapsed);
    lane.series[req.cls].add(req.departure, sd);
    if (sc_.metrics.record_requests &&
        req.departure >= sc_.metrics.record_from &&
        req.departure < sc_.metrics.record_to) {
      lane.records.push_back(req);
    }
  }

  /// Server::realloc_tick + DedicatedRateBackend::set_rates, flattened —
  /// same statement order, so the floating-point settle/reschedule
  /// arithmetic matches the per-task path operation for operation.
  void realloc_tick(Lane& lane, Time* clocks, Time t) {
    // LoadEstimator::roll, mirrored.
    {
      const Duration len = t - lane.est_window_start;
      PSD_REQUIRE(len > 0.0, "roll() before any time elapsed");
      EstWindow w;
      w.arrivals = lane.est_arrivals;
      w.work = lane.est_work;
      w.length = len;
      lane.est_closed.push_back(std::move(w));
      while (lane.est_closed.size() > sc_.estimator_history) {
        lane.est_closed.pop_front();
      }
      lane.est_arrivals.assign(n_, 0);
      lane.est_work.assign(n_, 0.0);
      lane.est_window_start = t;
    }
    lane.allocator->observe_slowdowns(lane.last_window_slowdowns(n_));
    const std::vector<double> next =
        lane.allocator->allocate(lane.lambda_estimate(n_));
    PSD_CHECK(next.size() == n_, "allocator size mismatch");
    if (finish_at_old_) {
      // Idle classes adopt immediately; busy ones at their next completion.
      lane.pending_rates = next;
      for (std::size_t cls = 0; cls < n_; ++cls) {
        if (!lane.slots[cls].busy) lane.rates[cls] = next[cls];
      }
    } else {  // kRescaleRemaining
      for (std::size_t cls = 0; cls < n_; ++cls) {
        Lane::Slot& slot = lane.slots[cls];
        if (slot.busy) {  // settle remaining work at the old rate
          slot.remaining -= (t - slot.last_settle) * lane.rates[cls];
          if (slot.remaining < 0.0) slot.remaining = 0.0;
          slot.last_settle = t;
        }
        lane.rates[cls] = next[cls];
        if (slot.busy) schedule_completion(lane, clocks, cls, t);
      }
    }
    ++lane.reallocs;
    clocks[0] = t + sc_.realloc_period;  // PeriodicProcess: next = t + period
  }

  void schedule_completion(Lane& lane, Time* clocks, std::size_t cls,
                           Time t) {
    const double rate = std::max(lane.rates[cls], kMinRate);
    clocks[1 + n_ + cls] = t + lane.slots[cls].remaining / rate;
  }

  /// The per-task runner's collect block, per lane.
  RunResult collect(const Lane& lane) const {
    RunResult out;
    out.time_unit = unit_;
    out.submitted = lane.submitted;
    out.reallocations = lane.reallocs;
    {
      // MetricsCollector::system_slowdown, mirrored.
      WeightedMean wm;
      for (std::size_t i = 0; i < n_; ++i) {
        if (lane.m_slowdown[i].count() > 0) {
          wm.add(lane.m_slowdown[i].mean(),
                 static_cast<double>(lane.m_slowdown[i].count()));
        }
      }
      out.system_slowdown = wm.mean();
    }
    out.records = lane.records;
    out.cls.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      out.cls[i].mean_slowdown = lane.m_slowdown[i].mean();
      out.cls[i].mean_delay = lane.m_delay[i].mean();
      out.cls[i].completed = lane.m_slowdown[i].count();
      out.cls[i].windows = lane.series[i].windows;
    }
    out.settle_tu = detail::settle_times(cfg_, out);
    return out;
  }

  const ScenarioConfig& cfg_;
  const SamplerVariant dist_;
  const double unit_;
  const std::size_t n_;
  const ServerConfig sc_;
  const bool realloc_on_;
  const bool finish_at_old_;
  LaneClockGrid clocks_;
  LaneDrawBlocks blocks_;
  std::vector<Lane> lanes_;
};

}  // namespace

std::vector<RunResult> run_scenario_lanes(const ScenarioConfig& cfg,
                                          std::uint64_t first_run_index,
                                          std::size_t lanes) {
  PSD_REQUIRE(lanes > 0, "need at least one lane");
  cfg.validate();
  if (!lockstep_eligible(cfg)) {
    // Backends without a lane-stepped specialization run each lane through
    // the regular per-task path (still one task for the whole group).
    std::vector<RunResult> out;
    out.reserve(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      out.push_back(run_scenario(cfg, first_run_index + l));
    }
    return out;
  }
  return LockstepKernel(cfg, first_run_index, lanes).run();
}

}  // namespace psd
