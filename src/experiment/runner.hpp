// Scenario execution: one replication, and thread-parallel replication sets
// with deterministic aggregation.
#pragma once

#include <vector>

#include "experiment/scenario.hpp"
#include "stats/ci.hpp"
#include "stats/interval_series.hpp"
#include "workload/request.hpp"
#include "workload/trace.hpp"

namespace psd {

struct ClassRunStats {
  double mean_slowdown = 0.0;
  double mean_delay = 0.0;
  std::uint64_t completed = 0;
  std::vector<IntervalStat> windows;  ///< Per-window mean slowdowns.
};

struct RunResult {
  std::vector<ClassRunStats> cls;
  double system_slowdown = 0.0;
  std::vector<Request> records;  ///< Only when cfg.record_requests.
  std::uint64_t submitted = 0;
  std::uint64_t reallocations = 0;
  double time_unit = 1.0;  ///< Raw time per paper tu.
  /// Ratio re-convergence after the profile's settling point
  /// (stats/convergence.hpp), in paper tu, for class j = 1..N-1.  Empty
  /// unless cfg.profile has a finite step_time(); NaN = never settled.
  std::vector<double> settle_tu;
  /// Overload-regime accounting, populated only when cfg.admission is
  /// active (empty / NaN otherwise — admission-off results are unchanged).
  std::vector<std::uint64_t> shed;     ///< Rejected at the gate, per class.
  std::vector<std::uint64_t> offered;  ///< Offered arrivals (incl. shed).
  /// Goodput: post-warmup completions of admitted work per paper tu; at
  /// capacity 1 a value of ~1.0 means the server is serving exactly what it
  /// can.  NaN when no gate is installed.
  double goodput_tu = kNaN;
};

/// Execute one replication; `run_index` derives an independent RNG stream
/// from cfg.seed (same cfg + same index => identical result).  With
/// cfg.cluster_nodes > 1 the replication runs the multi-node dispatcher
/// (src/cluster): per-class statistics are completion-weighted across
/// nodes, and window series are merged index-wise onto the shared time
/// grid (every node rolls the same warmup/window protocol), so windowed
/// ratio pairing stays time-aligned cluster-wide.
RunResult run_scenario(const ScenarioConfig& cfg, std::uint64_t run_index = 0);

/// Single-node replication that also captures every generated arrival as a
/// trace (time, class, size — raw simulator time).  The same trace can then
/// be replayed through run_scenario_replayed below or through the rt
/// runtime's TraceLoadGen, so one recorded workload exercises both stacks.
RunResult run_scenario_recorded(const ScenarioConfig& cfg, Trace& out_trace,
                                std::uint64_t run_index = 0);

/// Single-node replication driven by a recorded trace instead of synthetic
/// generators.  The scenario's measurement protocol (warmup, horizon,
/// windows) still applies; cfg.cluster_nodes must be 1.
RunResult run_scenario_replayed(const ScenarioConfig& cfg,
                                const Trace& trace);

struct RatioPercentiles {
  double p5 = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double mean = 0.0;
  std::uint64_t windows = 0;  ///< Ratio samples pooled (windows x runs).
};

struct ReplicatedResult {
  std::size_t runs = 0;
  /// Across-run mean (with 95% CI) of each class's mean slowdown.
  std::vector<ConfidenceInterval> slowdown;
  /// eq.-18 predictions for the configured true lambdas (NaN for allocators
  /// where the closed form does not apply).
  std::vector<double> expected;
  double system_slowdown = 0.0;
  double expected_system = 0.0;
  /// Windowed slowdown ratios class j / class 0, j = 1..N-1, pooled over all
  /// windows of all runs (Figs. 5-6, 9-10).
  std::vector<RatioPercentiles> ratio;
  /// Ratio of across-run mean slowdowns (the long-timescale achieved ratio).
  std::vector<double> mean_ratio;
  /// Transient-response statistics (tu) for class j = 1..N-1, empty unless
  /// the scenario's profile has a settling point: across-run mean of the
  /// finite per-run settle times (NaN when no run settled), the fraction
  /// of runs that settled at all, and the 75th percentile of settle times
  /// with never-settled runs counted as infinite (NaN when the percentile
  /// lands on one) — "75% of runs re-converged within p75" is the bound CI
  /// gates on, immune to fast runs dragging the mean under a tail of slow
  /// ones.  This is the statistic that separates the adaptive allocator
  /// from static ones under bursts.
  std::vector<double> settle_mean_tu;
  std::vector<double> settle_rate;
  std::vector<double> settle_p75_tu;
  std::uint64_t completed_total = 0;
  /// Overload-regime statistics (admission runs only; empty / NaN / 0
  /// otherwise).  shed_rate[c] pools shed/offered over all runs; goodput is
  /// the across-run mean of RunResult::goodput_tu; survivor_ratio_err is
  /// the worst windowed-median ratio error |p50_j / target_j - 1| over
  /// classes that actually completed work — ratio integrity among the
  /// admitted survivors.
  std::uint64_t shed_total = 0;
  std::vector<double> shed_rate;
  double goodput_tu = kNaN;
  double survivor_ratio_err = kNaN;
};

/// Deterministically aggregate per-replication results (in vector order)
/// into the cross-run statistics.  Exposed so external executors — the
/// sweep campaign engine schedules individual replications on a shared
/// thread pool — reuse the exact aggregation of run_replications.
ReplicatedResult aggregate_replications(const ScenarioConfig& cfg,
                                        const std::vector<RunResult>& results);

/// Run `runs` replications (thread-parallel unless `parallel` is false) and
/// aggregate.  Results are independent of thread scheduling.
ReplicatedResult run_replications(const ScenarioConfig& cfg, std::size_t runs,
                                  bool parallel = true);

/// How a replication set is executed.  kPerTask (default): one replication
/// per task — the historical shape.  kLockstep: replications run in groups
/// of `lanes` inside a single task on the lane-stepped batch kernel
/// (experiment/lockstep.hpp).  Execution mode only: per-lane results are
/// bitwise identical to kPerTask at the same derived seeds, so the mode
/// changes throughput, never numbers.
enum class ReplicationMode { kPerTask, kLockstep };

struct ReplicationPlan {
  ReplicationMode mode = ReplicationMode::kPerTask;
  /// Lane-group width K for kLockstep; a trailing group smaller than K
  /// (runs % K != 0) runs with the leftover lane count.
  std::size_t lanes = 8;
};

/// run_replications with an execution plan; the two-argument form above is
/// plan {kPerTask}.  Group g covers run indices [g*K, min((g+1)*K, runs)).
ReplicatedResult run_replications(const ScenarioConfig& cfg, std::size_t runs,
                                  bool parallel,
                                  const ReplicationPlan& plan);

/// Replication count for benches: PSD_RUNS env var if set; 8 under
/// PSD_FAST=1; otherwise `paper_default` (the paper used 100).
std::size_t default_runs(std::size_t paper_default = 40);

}  // namespace psd
