#include "experiment/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>

#include "baselines/pdd_policies.hpp"
#include "baselines/static_allocators.hpp"
#include "cluster/dispatcher.hpp"
#include "common/error.hpp"
#include "core/psd_allocation.hpp"
#include "core/psd_rate_allocator.hpp"
#include "experiment/lockstep.hpp"
#include "experiment/scenario_build.hpp"
#include "sched/lottery.hpp"
#include "sched/sfq.hpp"
#include "server/server.hpp"
#include "stats/convergence.hpp"
#include "stats/percentile.hpp"
#include "workload/generator.hpp"

namespace psd {

namespace detail {

std::unique_ptr<SchedulerBackend> make_scenario_backend(
    const ScenarioConfig& cfg, double unit) {
  switch (cfg.backend) {
    case BackendKind::kDedicated:
      return std::make_unique<DedicatedRateBackend>(cfg.rate_change);
    case BackendKind::kSfq:
      return std::make_unique<SfqBackend>();
    case BackendKind::kLottery:
      return std::make_unique<LotteryBackend>(cfg.lottery_quantum_tu * unit);
    case BackendKind::kWtp:
      return make_wtp_backend(cfg.delta);
    case BackendKind::kPad:
      return make_pad_backend(cfg.delta);
    case BackendKind::kHpd:
      return make_hpd_backend(cfg.delta);
    case BackendKind::kStrict:
      return make_strict_backend(cfg.num_classes());
  }
  PSD_UNREACHABLE("unknown backend kind");
}

std::unique_ptr<RateAllocator> make_scenario_allocator(
    const ScenarioConfig& cfg, double mean_size) {
  PsdAllocatorConfig pc;
  pc.delta = cfg.delta;
  pc.capacity = cfg.capacity;
  pc.mean_size = mean_size;
  pc.rho_max = cfg.rho_max;
  pc.min_residual_share = cfg.min_residual_share;
  switch (cfg.allocator) {
    case AllocatorKind::kPsd:
      return std::make_unique<PsdRateAllocator>(pc);
    case AllocatorKind::kAdaptivePsd:
      return std::make_unique<AdaptivePsdAllocator>(pc, cfg.adaptive);
    case AllocatorKind::kEqualShare:
      return std::make_unique<EqualShareAllocator>(cfg.num_classes(),
                                                   cfg.capacity);
    case AllocatorKind::kLoadProportional:
      return std::make_unique<LoadProportionalAllocator>(
          cfg.num_classes(), cfg.capacity, mean_size);
    case AllocatorKind::kNone:
      return nullptr;
  }
  PSD_UNREACHABLE("unknown allocator kind");
}

// Doc comments for the detail functions live in scenario_build.hpp.
ArrivalVariant scenario_arrivals(const ScenarioConfig& cfg, double lambda,
                                 double unit) {
  if (!cfg.profile.active()) {
    return make_arrivals(cfg.arrivals, lambda, cfg.burstiness,
                         cfg.mmpp_sojourn, cfg.mmpp_duty);
  }
  return make_arrivals(cfg.arrivals, lambda, cfg.burstiness, cfg.mmpp_sojourn,
                       cfg.mmpp_duty, cfg.profile.scaled_time(unit));
}

std::vector<double> settle_times(const ScenarioConfig& cfg,
                                 const RunResult& r) {
  const double step_tu = cfg.profile.step_time();
  if (!std::isfinite(step_tu) || r.cls.size() < 2) return {};
  const double unit = r.time_unit;
  const double onset = (cfg.warmup_tu > step_tu ? cfg.warmup_tu : step_tu) *
                       unit;  // windows only exist past the warmup
  std::vector<double> out(r.cls.size() - 1, kNaN);
  for (std::size_t j = 1; j < r.cls.size(); ++j) {
    const double settled = ratio_settle_time(
        r.cls[0].windows, r.cls[j].windows, cfg.delta[j] / cfg.delta[0],
        cfg.converge_tol, onset, cfg.window_tu * unit);
    out[j - 1] = settled / unit;  // NaN propagates
  }
  return out;
}

ServerConfig node_server_config(const ScenarioConfig& cfg, double unit) {
  ServerConfig sc;
  sc.num_classes = cfg.num_classes();
  sc.capacity = cfg.capacity;
  sc.realloc_period =
      cfg.allocator == AllocatorKind::kNone ? 0.0 : cfg.realloc_tu * unit;
  sc.estimator_history = cfg.estimator_history;
  sc.metrics.num_classes = cfg.num_classes();
  sc.metrics.warmup_end = cfg.warmup_tu * unit;
  sc.metrics.window = cfg.window_tu * unit;
  sc.metrics.record_requests = cfg.record_requests;
  sc.metrics.record_from = cfg.record_from_tu * unit;
  sc.metrics.record_to = cfg.record_to_tu * unit;
  return sc;
}

}  // namespace detail

namespace {

using detail::make_scenario_allocator;
using detail::make_scenario_backend;
using detail::node_server_config;
using detail::scenario_arrivals;
using detail::settle_times;

/// Per-class statistics from one server's metrics into `out`, weighting
/// means by completion counts so multi-node aggregation is exact.  Window
/// series MERGE index-wise: every node rolls the same (warmup, window)
/// grid — IntervalSeries keeps empty windows — so index w is the same time
/// interval cluster-wide, and downstream ratio pairing (class j vs class 0
/// at equal indices) stays time-aligned.  Concatenating node series instead
/// would misalign the pairing as soon as two nodes emit different window
/// counts.
void accumulate_node(RunResult& out, const Server& server) {
  const auto& m = server.metrics();
  out.submitted += server.submitted();
  out.reallocations += server.reallocations();
  for (std::size_t i = 0; i < out.cls.size(); ++i) {
    auto& c = out.cls[i];
    const auto cls = static_cast<ClassId>(i);
    const std::uint64_t done = m.completed(cls);
    if (done > 0) {
      const double total = static_cast<double>(c.completed + done);
      const double w = static_cast<double>(done) / total;
      c.mean_slowdown += (m.slowdown(cls).mean() - c.mean_slowdown) * w;
      c.mean_delay += (m.delay(cls).mean() - c.mean_delay) * w;
      c.completed += done;
    }
    merge_windows_into(c.windows, m.windows(cls));
  }
  const auto& rec = m.records();
  out.records.insert(out.records.end(), rec.begin(), rec.end());
}

RunResult run_cluster_scenario(const ScenarioConfig& cfg,
                               std::uint64_t run_index) {
  const SamplerVariant dist = make_sampler(cfg.size_dist);
  const double unit = dist.mean() / cfg.capacity;
  const auto lambdas = cfg.true_lambdas();  // per node
  const std::size_t n = cfg.num_classes();
  const std::size_t nodes = cfg.cluster_nodes;

  Simulator sim;
  Rng master(cfg.seed);
  Rng run_rng = master.fork(run_index);

  std::vector<double> cutoffs;
  if (cfg.cluster_policy == AssignmentPolicy::kSizeInterval) {
    // validate() guarantees a bounded-pareto spec here.
    BoundedPareto bp(cfg.size_dist.a, cfg.size_dist.b, cfg.size_dist.c);
    cutoffs = sita_equal_load_cutoffs(bp, nodes);
  }

  Cluster cluster(
      sim, nodes, node_server_config(cfg, unit),
      [&] { return make_scenario_backend(cfg, unit); },
      [&] { return make_scenario_allocator(cfg, dist.mean()); },
      AssignmentSpec(cfg.cluster_policy, cfg.cluster_jsq_d),
      run_rng.fork(1000), std::move(cutoffs));
  if (cfg.admission.active()) {
    // Each node gates its own share of the offered load, mirroring the
    // per-node allocator: a node-local gate sized at node capacity.
    for (std::size_t m = 0; m < nodes; ++m) {
      cluster.node(m).set_admission(
          make_admission(cfg.admission, cfg.delta, dist, cfg.capacity));
    }
  }
  cluster.start(0.0);

  // One generator per class; `load` is per-node utilization, so the cluster
  // as a whole receives nodes x the single-node arrival rate.
  std::vector<std::unique_ptr<RequestGenerator>> gens;
  gens.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    gens.push_back(std::make_unique<RequestGenerator>(
        sim, run_rng.fork(i), static_cast<ClassId>(i),
        scenario_arrivals(cfg, lambdas[i] * static_cast<double>(nodes), unit),
        dist, cluster));
    gens.back()->start(0.0);
  }

  const Time horizon = (cfg.warmup_tu + cfg.measure_tu) * unit;
  sim.run_until(horizon);
  for (auto& g : gens) g->stop();
  cluster.finalize();

  RunResult out;
  out.time_unit = unit;
  out.cls.resize(n);
  double sys = 0.0;
  std::uint64_t sys_n = 0;
  for (std::size_t m = 0; m < nodes; ++m) {
    const Server& node = cluster.node(m);
    accumulate_node(out, node);
    const std::uint64_t done = node.metrics().completed_total();
    if (done > 0) {
      sys += (node.metrics().system_slowdown() - sys) *
             (static_cast<double>(done) / static_cast<double>(sys_n + done));
      sys_n += done;
    }
  }
  out.system_slowdown = sys_n > 0 ? sys : kNaN;
  out.settle_tu = settle_times(cfg, out);
  if (cfg.admission.active()) {
    out.shed.assign(n, 0);
    out.offered.assign(n, 0);
    std::uint64_t done = 0;
    for (std::size_t m = 0; m < nodes; ++m) {
      const Server& node = cluster.node(m);
      for (std::size_t i = 0; i < n; ++i) {
        out.shed[i] += node.rejected(static_cast<ClassId>(i));
        out.offered[i] += node.offered(static_cast<ClassId>(i));
      }
    }
    for (const auto& c : out.cls) done += c.completed;
    out.goodput_tu = static_cast<double>(done) / cfg.measure_tu;
  }
  return out;
}

/// Single-node replication core.  `record` (optional) receives every
/// generated arrival as a trace; `replay` (optional) substitutes a
/// TracePlayer for the synthetic generators.  At most one may be set.
RunResult run_single_node_scenario(const ScenarioConfig& cfg,
                                   std::uint64_t run_index,
                                   Trace* record = nullptr,
                                   const Trace* replay = nullptr) {
  const SamplerVariant dist = make_sampler(cfg.size_dist);
  const double unit = dist.mean() / cfg.capacity;
  const auto lambdas = cfg.true_lambdas();
  const std::size_t n = cfg.num_classes();

  Simulator sim;
  Rng master(cfg.seed);
  Rng run_rng = master.fork(run_index);

  Server server(sim, node_server_config(cfg, unit),
                make_scenario_backend(cfg, unit),
                make_scenario_allocator(cfg, dist.mean()),
                run_rng.fork(1000));
  if (cfg.admission.active()) {
    server.set_admission(
        make_admission(cfg.admission, cfg.delta, dist, cfg.capacity));
  }
  server.start(0.0);

  // --- arrivals: generators (one per class, independent streams), with an
  //     optional recording tee in front of the server, or a trace replay ---
  PSD_CHECK(record == nullptr || replay == nullptr,
            "cannot record and replay at once");
  RecordingSink recorder(&server);
  RequestSink& sink = record != nullptr
                          ? static_cast<RequestSink&>(recorder)
                          : static_cast<RequestSink&>(server);
  std::vector<std::unique_ptr<RequestGenerator>> gens;
  std::unique_ptr<TracePlayer> player;
  if (replay != nullptr) {
    player = std::make_unique<TracePlayer>(sim, *replay, server);
    if (!replay->empty()) player->start(replay->front().time);
  } else {
    gens.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      gens.push_back(std::make_unique<RequestGenerator>(
          sim, run_rng.fork(i), static_cast<ClassId>(i),
          scenario_arrivals(cfg, lambdas[i], unit), dist, sink));
      gens.back()->start(0.0);
    }
  }

  // --- run: warmup + measurement ---
  const Time horizon = (cfg.warmup_tu + cfg.measure_tu) * unit;
  sim.run_until(horizon);
  for (auto& g : gens) g->stop();
  server.finalize();
  if (record != nullptr) *record = recorder.take_trace();

  // --- collect ---
  RunResult out;
  out.time_unit = unit;
  out.submitted = server.submitted();
  out.reallocations = server.reallocations();
  out.system_slowdown = server.metrics().system_slowdown();
  out.records = server.metrics().records();
  out.cls.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& m = server.metrics();
    out.cls[i].mean_slowdown = m.slowdown(static_cast<ClassId>(i)).mean();
    out.cls[i].mean_delay = m.delay(static_cast<ClassId>(i)).mean();
    out.cls[i].completed = m.completed(static_cast<ClassId>(i));
    out.cls[i].windows = m.windows(static_cast<ClassId>(i));
  }
  out.settle_tu = settle_times(cfg, out);
  if (cfg.admission.active()) {
    out.shed.resize(n);
    out.offered.resize(n);
    std::uint64_t done = 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.shed[i] = server.rejected(static_cast<ClassId>(i));
      out.offered[i] = server.offered(static_cast<ClassId>(i));
      done += out.cls[i].completed;
    }
    out.goodput_tu = static_cast<double>(done) / cfg.measure_tu;
  }
  return out;
}

}  // namespace

RunResult run_scenario(const ScenarioConfig& cfg, std::uint64_t run_index) {
  cfg.validate();
  return cfg.cluster_nodes > 1 ? run_cluster_scenario(cfg, run_index)
                               : run_single_node_scenario(cfg, run_index);
}

RunResult run_scenario_recorded(const ScenarioConfig& cfg, Trace& out_trace,
                                std::uint64_t run_index) {
  cfg.validate();
  PSD_REQUIRE(cfg.cluster_nodes == 1,
              "trace recording requires a single-node scenario");
  return run_single_node_scenario(cfg, run_index, &out_trace, nullptr);
}

RunResult run_scenario_replayed(const ScenarioConfig& cfg,
                                const Trace& trace) {
  cfg.validate();
  PSD_REQUIRE(cfg.cluster_nodes == 1,
              "trace replay requires a single-node scenario");
  return run_single_node_scenario(cfg, 0, nullptr, &trace);
}

ReplicatedResult aggregate_replications(const ScenarioConfig& cfg,
                                        const std::vector<RunResult>& results) {
  PSD_REQUIRE(!results.empty(), "need at least one run");
  const std::size_t n = cfg.num_classes();
  ReplicatedResult agg;
  agg.runs = results.size();

  // Across-run means of per-class mean slowdowns.
  agg.slowdown.resize(n);
  std::vector<std::vector<double>> per_class(n);
  std::vector<double> sys;
  for (const auto& r : results) {
    for (std::size_t i = 0; i < n; ++i) {
      if (r.cls[i].completed > 0) {
        per_class[i].push_back(r.cls[i].mean_slowdown);
      }
      agg.completed_total += r.cls[i].completed;
    }
    if (std::isfinite(r.system_slowdown)) sys.push_back(r.system_slowdown);
  }
  for (std::size_t i = 0; i < n; ++i) {
    agg.slowdown[i] = mean_confidence(per_class[i]);
  }
  agg.system_slowdown = mean_confidence(sys).mean;

  // Long-timescale achieved ratios.
  agg.mean_ratio.assign(n, kNaN);
  if (agg.slowdown[0].mean > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      agg.mean_ratio[i] = agg.slowdown[i].mean / agg.slowdown[0].mean;
    }
  }

  // Windowed ratio percentiles (class j vs class 0), pooled over runs.
  agg.ratio.resize(n >= 1 ? n - 1 : 0);
  for (std::size_t j = 1; j < n; ++j) {
    std::vector<double> ratios;
    for (const auto& r : results) {
      const auto& w0 = r.cls[0].windows;
      const auto& wj = r.cls[j].windows;
      const std::size_t m = std::min(w0.size(), wj.size());
      for (std::size_t w = 0; w < m; ++w) {
        if (w0[w].count > 0 && wj[w].count > 0 && w0[w].mean > 0.0) {
          ratios.push_back(wj[w].mean / w0[w].mean);
        }
      }
    }
    RatioPercentiles rp;
    rp.windows = ratios.size();
    if (!ratios.empty()) {
      const auto ps = percentiles_of(ratios, {0.05, 0.5, 0.95});
      rp.p5 = ps[0];
      rp.p50 = ps[1];
      rp.p95 = ps[2];
      double s = 0.0;
      for (double x : ratios) s += x;
      rp.mean = s / static_cast<double>(ratios.size());
    }
    agg.ratio[j - 1] = rp;
  }

  // Transient response: across-run mean of the finite settle times and the
  // fraction of runs that settled (profiled scenarios only).
  if (std::isfinite(cfg.profile.step_time()) && n >= 2) {
    agg.settle_mean_tu.assign(n - 1, kNaN);
    agg.settle_rate.assign(n - 1, 0.0);
    agg.settle_p75_tu.assign(n - 1, kNaN);
    for (std::size_t j = 0; j + 1 < n; ++j) {
      std::vector<double> settled_times;
      std::size_t seen = 0;
      for (const auto& r : results) {
        if (j >= r.settle_tu.size()) continue;
        ++seen;
        if (std::isfinite(r.settle_tu[j])) {
          settled_times.push_back(r.settle_tu[j]);
        }
      }
      if (seen == 0) continue;
      agg.settle_rate[j] = static_cast<double>(settled_times.size()) /
                           static_cast<double>(seen);
      if (settled_times.empty()) continue;
      double sum = 0.0;
      for (double t : settled_times) sum += t;
      agg.settle_mean_tu[j] = sum / static_cast<double>(settled_times.size());
      // p75 over ALL runs, unsettled ones ranking as +inf: the smallest
      // bound that 75% of runs met, NaN when fewer than 75% settled.
      std::sort(settled_times.begin(), settled_times.end());
      const std::size_t rank =
          static_cast<std::size_t>(std::ceil(0.75 * static_cast<double>(seen)));
      if (rank >= 1 && rank <= settled_times.size()) {
        agg.settle_p75_tu[j] = settled_times[rank - 1];
      }
    }
  }

  // Overload-regime aggregation: pooled per-class shed rates, mean goodput,
  // and worst windowed-median ratio error over surviving classes.
  if (cfg.admission.active()) {
    agg.shed_rate.assign(n, kNaN);
    std::vector<std::uint64_t> shed(n, 0), offered(n, 0);
    double good = 0.0;
    std::size_t good_n = 0;
    for (const auto& r : results) {
      for (std::size_t i = 0; i < n && i < r.shed.size(); ++i) {
        shed[i] += r.shed[i];
        offered[i] += r.offered[i];
      }
      if (std::isfinite(r.goodput_tu)) {
        good += r.goodput_tu;
        ++good_n;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      agg.shed_total += shed[i];
      if (offered[i] > 0) {
        agg.shed_rate[i] = static_cast<double>(shed[i]) /
                           static_cast<double>(offered[i]);
      }
    }
    if (good_n > 0) agg.goodput_tu = good / static_cast<double>(good_n);
    for (std::size_t j = 1; j < n; ++j) {
      const auto& rp = agg.ratio[j - 1];
      if (rp.windows == 0) continue;  // class fully shed: not a survivor
      const double target = cfg.delta[j] / cfg.delta[0];
      const double err = std::abs(rp.p50 / target - 1.0);
      if (!(err <= agg.survivor_ratio_err)) {  // NaN-aware max
        agg.survivor_ratio_err = err;
      }
    }
    if (n == 1) agg.survivor_ratio_err = 0.0;
  }

  // eq.-18 predictions (only meaningful for the PSD allocators with a
  // distribution whose E[1/X] exists).
  agg.expected.assign(n, kNaN);
  agg.expected_system = kNaN;
  if (cfg.allocator == AllocatorKind::kPsd ||
      cfg.allocator == AllocatorKind::kAdaptivePsd) {
    try {
      const SamplerVariant dist = make_sampler(cfg.size_dist);
      agg.expected = expected_psd_slowdowns(cfg.true_lambdas(), cfg.delta,
                                            dist, cfg.capacity);
      agg.expected_system = expected_system_slowdown(
          cfg.true_lambdas(), cfg.delta, dist, cfg.capacity);
    } catch (const std::exception&) {
      // leave NaNs (e.g. E[1/X] undefined)
    }
  }
  return agg;
}

ReplicatedResult run_replications(const ScenarioConfig& cfg, std::size_t runs,
                                  bool parallel) {
  PSD_REQUIRE(runs > 0, "need at least one run");
  std::vector<RunResult> results(runs);

  if (parallel && runs > 1) {
    const std::size_t workers = std::min<std::size_t>(
        runs, std::max(1u, std::thread::hardware_concurrency()));
    std::vector<std::future<void>> futs;
    futs.reserve(workers);
    std::atomic<std::size_t> next{0};
    for (std::size_t w = 0; w < workers; ++w) {
      futs.push_back(std::async(std::launch::async, [&] {
        for (;;) {
          const std::size_t r = next.fetch_add(1);
          if (r >= runs) return;
          results[r] = run_scenario(cfg, r);
        }
      }));
    }
    for (auto& f : futs) f.get();
  } else {
    for (std::size_t r = 0; r < runs; ++r) results[r] = run_scenario(cfg, r);
  }
  return aggregate_replications(cfg, results);
}

ReplicatedResult run_replications(const ScenarioConfig& cfg, std::size_t runs,
                                  bool parallel,
                                  const ReplicationPlan& plan) {
  PSD_REQUIRE(runs > 0, "need at least one run");
  if (plan.mode == ReplicationMode::kPerTask || plan.lanes <= 1) {
    return run_replications(cfg, runs, parallel);
  }
  const std::size_t lanes = plan.lanes;
  const std::size_t groups = (runs + lanes - 1) / lanes;
  std::vector<RunResult> results(runs);
  auto run_group = [&](std::size_t g) {
    const std::size_t first = g * lanes;
    const std::size_t count = std::min(lanes, runs - first);
    auto group = run_scenario_lanes(cfg, first, count);
    for (std::size_t j = 0; j < count; ++j) {
      results[first + j] = std::move(group[j]);
    }
  };

  if (parallel && groups > 1) {
    const std::size_t workers = std::min<std::size_t>(
        groups, std::max(1u, std::thread::hardware_concurrency()));
    std::vector<std::future<void>> futs;
    futs.reserve(workers);
    std::atomic<std::size_t> next{0};
    for (std::size_t w = 0; w < workers; ++w) {
      futs.push_back(std::async(std::launch::async, [&] {
        for (;;) {
          const std::size_t g = next.fetch_add(1);
          if (g >= groups) return;
          run_group(g);
        }
      }));
    }
    for (auto& f : futs) f.get();
  } else {
    for (std::size_t g = 0; g < groups; ++g) run_group(g);
  }
  return aggregate_replications(cfg, results);
}

std::size_t default_runs(std::size_t paper_default) {
  if (const char* env = std::getenv("PSD_RUNS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  if (const char* fast = std::getenv("PSD_FAST")) {
    if (std::string(fast) == "1") return 8;
  }
  return paper_default;
}

}  // namespace psd
