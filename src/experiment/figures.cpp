#include "experiment/figures.hpp"

#include "common/error.hpp"

namespace psd {

std::vector<double> standard_load_sweep() {
  return {5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95};
}

ScenarioConfig two_class_scenario(double delta2, double load_percent) {
  PSD_REQUIRE(delta2 >= 1.0, "delta2 must be >= delta1 == 1");
  PSD_REQUIRE(load_percent > 0.0 && load_percent < 100.0,
              "load percent in (0,100)");
  ScenarioConfig cfg;
  cfg.delta = {1.0, delta2};
  cfg.load = load_percent / 100.0;
  cfg.size_dist = DistSpec::bounded_pareto(1.5, 0.1, 100.0);
  return cfg;
}

ScenarioConfig three_class_scenario(double load_percent) {
  ScenarioConfig cfg = two_class_scenario(2.0, load_percent);
  cfg.delta = {1.0, 2.0, 3.0};
  return cfg;
}

ScenarioConfig individual_request_scenario(double load_percent) {
  ScenarioConfig cfg = two_class_scenario(2.0, load_percent);
  cfg.record_requests = true;
  cfg.record_from_tu = 60000.0;
  cfg.record_to_tu = 61000.0;
  // Records live inside the measurement span: measure through 61000 tu.
  cfg.measure_tu = 61000.0;
  return cfg;
}

std::vector<double> shape_parameter_sweep() {
  return {1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0};
}

std::vector<double> upper_bound_sweep() {
  return {100, 316, 1000, 3162, 10000};
}

}  // namespace psd
