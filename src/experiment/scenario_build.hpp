// Shared scenario-construction pieces: the factories and protocol helpers
// run_scenario assembles a replication from, exposed so the lockstep batch
// kernel (experiment/lockstep.cpp) builds its lanes from the *same* parts.
// Any drift between the two paths breaks the bitwise-equivalence contract,
// so there is exactly one definition of each (in runner.cpp).
//
// Internal to src/experiment — not part of the public runner API.
#pragma once

#include <memory>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "sched/backend.hpp"
#include "server/allocator.hpp"
#include "server/server.hpp"
#include "workload/arrival.hpp"

namespace psd::detail {

/// Scheduler backend the config selects (`unit` = raw time per paper tu).
std::unique_ptr<SchedulerBackend> make_scenario_backend(
    const ScenarioConfig& cfg, double unit);

/// Rate allocator the config selects; null for AllocatorKind::kNone.
std::unique_ptr<RateAllocator> make_scenario_allocator(
    const ScenarioConfig& cfg, double mean_size);

/// One class's arrival process in raw simulator time: the configured
/// stationary shape, modulated by the scenario profile when one is set
/// (profile times are paper tu, so scale them by `unit` first).
ArrivalVariant scenario_arrivals(const ScenarioConfig& cfg, double lambda,
                                 double unit);

/// ServerConfig for one node (measurement protocol scaled to raw time).
ServerConfig node_server_config(const ScenarioConfig& cfg, double unit);

/// Per-class settle times (tu) from the per-window slowdown series, when
/// the profile defines a settling point inside the run.
std::vector<double> settle_times(const ScenarioConfig& cfg,
                                 const RunResult& r);

}  // namespace psd::detail
