#include "experiment/table.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace psd {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PSD_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PSD_REQUIRE(cells.size() == headers_.size(), "cell count mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  if (std::isnan(v)) return "-";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::add_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  std::vector<std::string> rule;
  rule.reserve(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule.emplace_back(width[c], '-');
  }
  line(rule);
  for (const auto& row : rows_) line(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "," : "") << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace psd
