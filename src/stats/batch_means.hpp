// Batch-means confidence intervals for steady-state simulation output.
//
// Correlated within-run observations (consecutive slowdowns share queue
// state) are grouped into B batches whose means are approximately i.i.d.;
// the CI is then a t-interval over batch means.
#pragma once

#include <cstddef>
#include <vector>

namespace psd {

struct BatchMeansResult {
  double mean = 0.0;
  double half_width = 0.0;  ///< 95% CI half width; 0 when < 2 batches.
  std::size_t batches = 0;
  std::size_t per_batch = 0;
};

/// Split `observations` (in arrival order) into `batches` equal batches,
/// discarding the remainder at the front (warmup-biased observations).
BatchMeansResult batch_means(const std::vector<double>& observations,
                             std::size_t batches = 20);

}  // namespace psd
