#include "stats/p2_quantile.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/types.hpp"

namespace psd {

P2Quantile::P2Quantile(double q) : q_(q) {
  PSD_REQUIRE(q > 0.0 && q < 1.0, "quantile must lie strictly in (0,1)");
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void P2Quantile::insert_sorted(double x) {
  auto end = heights_.begin() + static_cast<std::ptrdiff_t>(n_);
  auto pos = std::upper_bound(heights_.begin(), end, x);
  std::copy_backward(pos, end, end + 1);
  *pos = x;
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    insert_sorted(x);
    ++n_;
    if (n_ == 5) {
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }
  ++n_;

  // Locate the cell containing x and bump marker positions above it.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the three interior markers with parabolic interpolation.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right = positions_[i + 1] - positions_[i];
    const double left = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0)) {
      const double s = d >= 0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction.
      const double hp = heights_[i + 1];
      const double hm = heights_[i - 1];
      const double h = heights_[i];
      double candidate =
          h + s / (right - left) *
                  ((positions_[i] - positions_[i - 1] + s) * (hp - h) / right +
                   (positions_[i + 1] - positions_[i] - s) * (h - hm) / -left);
      if (!(hm < candidate && candidate < hp)) {
        // Fall back to linear interpolation toward the chosen neighbour.
        const int j = s > 0 ? i + 1 : i - 1;
        candidate = h + s * (heights_[j] - h) /
                            (positions_[j] - positions_[i]);
      }
      heights_[i] = candidate;
      positions_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return kNaN;
  if (n_ < 5) {
    // Exact quantile (nearest-rank with interpolation) over the sorted buffer.
    const double idx = q_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min<std::size_t>(lo + 1, n_ - 1);
    const double frac = idx - static_cast<double>(lo);
    return heights_[lo] * (1.0 - frac) + heights_[hi] * frac;
  }
  return heights_[2];
}

P2QuantileSet::P2QuantileSet(std::vector<double> quantiles) {
  PSD_REQUIRE(!quantiles.empty(), "need at least one quantile");
  estimators_.reserve(quantiles.size());
  for (double q : quantiles) estimators_.emplace_back(q);
}

void P2QuantileSet::add(double x) {
  for (auto& e : estimators_) e.add(x);
}

std::uint64_t P2QuantileSet::count() const {
  return estimators_.front().count();
}

}  // namespace psd
