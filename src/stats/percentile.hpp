// Exact percentiles of in-memory samples.
#pragma once

#include <vector>

namespace psd {

/// q-quantile (q in [0,1]) with linear interpolation between order statistics.
/// Sorts `values` in place; NaN when empty.
double percentile_of(std::vector<double>& values, double q);

/// Convenience: copies, then delegates to percentile_of.
double percentile_copy(const std::vector<double>& values, double q);

/// Several quantiles of one (already unsorted) sample; sorts once.
std::vector<double> percentiles_of(std::vector<double>& values,
                                   const std::vector<double>& qs);

}  // namespace psd
