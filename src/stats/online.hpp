// Streaming moment accumulators (Welford / Chan parallel-merge form).
//
// Used for per-class slowdown statistics inside the simulator and for
// replication-level aggregation in the experiment harness.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace psd {

/// Count / mean / variance / extrema in a single pass, numerically stable.
class OnlineMoments {
 public:
  void add(double x);

  /// Merge another accumulator (Chan et al.); enables parallel reduction.
  void merge(const OnlineMoments& other);

  void reset();

  std::uint64_t count() const { return n_; }
  double mean() const;            ///< NaN when empty.
  double variance() const;        ///< Unbiased sample variance; NaN when n < 2.
  double variance_population() const;  ///< Biased (divide by n); NaN when empty.
  double stddev() const;          ///< sqrt(variance()); NaN when n < 2.
  double min() const;             ///< +inf when empty.
  double max() const;             ///< -inf when empty.
  double sum() const { return static_cast<double>(n_) * (n_ ? mean_ : 0.0); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = kInf;
  double max_ = -kInf;
};

/// Weighted mean (e.g. the paper's "system slowdown": per-class slowdowns
/// weighted by completed-request counts).
class WeightedMean {
 public:
  void add(double value, double weight);
  void merge(const WeightedMean& other);
  void reset();

  double mean() const;  ///< NaN when total weight is zero.
  double weight() const { return w_; }

 private:
  double w_ = 0.0;
  double mean_ = 0.0;
};

}  // namespace psd
