#include "stats/batch_means.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/ci.hpp"
#include "stats/online.hpp"

namespace psd {

BatchMeansResult batch_means(const std::vector<double>& observations,
                             std::size_t batches) {
  PSD_REQUIRE(batches >= 2, "need at least two batches");
  BatchMeansResult out;
  if (observations.size() < batches) {
    // Not enough data to batch; fall back to the plain mean, zero CI.
    OnlineMoments m;
    for (double x : observations) m.add(x);
    out.mean = observations.empty() ? 0.0 : m.mean();
    out.batches = observations.empty() ? 0 : 1;
    out.per_batch = observations.size();
    return out;
  }
  const std::size_t per_batch = observations.size() / batches;
  const std::size_t skip = observations.size() - per_batch * batches;

  std::vector<double> means;
  means.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    OnlineMoments m;
    const std::size_t begin = skip + b * per_batch;
    for (std::size_t i = 0; i < per_batch; ++i) m.add(observations[begin + i]);
    means.push_back(m.mean());
  }
  const auto ci = mean_confidence(means);
  out.mean = ci.mean;
  out.half_width = ci.half_width;
  out.batches = batches;
  out.per_batch = per_batch;
  return out;
}

}  // namespace psd
