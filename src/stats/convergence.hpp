// Re-convergence ("settle time") of achieved slowdown ratios after a load
// disturbance.
//
// The adaptive eq.-17 allocator's whole purpose is to pull per-class
// slowdown ratios back to the delta targets when the offered load shifts;
// this metric makes that comparable across allocators: given the per-window
// mean-slowdown series of class j and class 0 and a disturbance onset, the
// settle time is how long after the onset the windowed ratio takes to
// re-enter the tolerance band around the target and STAY there for the rest
// of the run.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "stats/interval_series.hpp"

namespace psd {

/// Settle time of the achieved ratio after `onset`: at each window end past
/// the onset, form the ratio of the classes' exponentially-discounted
/// count-weighted mean slowdowns (per-window decay 0.7, an effective
/// averaging horizon of ~3 windows) and find the last evaluation point
/// where it falls outside [target*(1-tol), target*(1+tol)]:
///   * never out of band          -> 0 (already converged at the onset),
///   * out of band at the final evaluation point
///                                -> NaN (never observed to re-converge),
///   * otherwise                  -> that window's end - onset.
/// Why discounted means: a raw per-window ratio is swung arbitrarily by a
/// single Bounded-Pareto giant (the windowed p5-p95 ratio spread covers
/// orders of magnitude), while an undiscounted cumulative mean never
/// forgets the drain transient right after the disturbance — its huge
/// absolute slowdowns dominate the sums for the rest of the run.  The EWMA
/// smooths several windows together AND ages the transient out, which is
/// what a settling-time band test needs.  Windows pair index-wise (both
/// series roll the same grid); an evaluation point exists once both
/// discounted eras have weight and the class-0 mean is positive.  Returns
/// NaN when there are no evaluation points after the onset.  `window` is
/// the series' window length (IntervalStat carries only start times).
double ratio_settle_time(const std::vector<IntervalStat>& w0,
                         const std::vector<IntervalStat>& wj, double target,
                         double tol, Time onset, Duration window);

/// Median of per-window slowdown ratios pooled across sources: for each
/// source s, windows pair index-wise between base[s] (class 0) and cls[s]
/// (class j) — every shard in a runtime (and every node in a cluster) rolls
/// the same warmup/window grid, so index i is the same time interval
/// everywhere — and each pair with completions on both sides and a positive
/// base mean contributes one ratio.  Returns the median over the pooled
/// ratios, NaN when none qualify.  This is THE windowed-ratio statistic the
/// rt report, the cluster report, and the smoke checks all share; pooling
/// before taking the median keeps one hot shard from dominating.
double pooled_window_ratio_median(
    const std::vector<const std::vector<IntervalStat>*>& base,
    const std::vector<const std::vector<IntervalStat>*>& cls);

}  // namespace psd
