#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/types.hpp"

namespace psd {

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins_per_decade)
    : lo_(lo), min_seen_(kInf), max_seen_(-kInf) {
  PSD_REQUIRE(lo > 0.0 && hi > lo, "LogHistogram needs 0 < lo < hi");
  PSD_REQUIRE(bins_per_decade > 0, "bins_per_decade must be positive");
  log_lo_ = std::log10(lo);
  const double decades = std::log10(hi) - log_lo_;
  const auto bins = static_cast<std::size_t>(
      std::ceil(decades * static_cast<double>(bins_per_decade)));
  log_step_ = decades / static_cast<double>(std::max<std::size_t>(bins, 1));
  constexpr double kLog10Of2 = 0.30102999566398119521;
  fast_scale_ = kLog10Of2 / log_step_;
  fast_offset_ = log_lo_ / log_step_;
  counts_.assign(std::max<std::size_t>(bins, 1), 0);
}

void LogHistogram::add(double x) {
  ++total_;
  min_seen_ = std::min(min_seen_, x);
  max_seen_ = std::max(max_seen_, x);
  if (!(x >= lo_)) {  // also catches NaN -> underflow
    ++underflow_;
    return;
  }
  const double pos = (std::log10(x) - log_lo_) / log_step_;
  if (pos >= static_cast<double>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(pos)];
}

void LogHistogram::add_fast(double x) {
  ++total_;
  min_seen_ = std::min(min_seen_, x);
  max_seen_ = std::max(max_seen_, x);
  if (!(x >= lo_)) {  // also catches NaN -> underflow
    ++underflow_;
    return;
  }
  // log10(x) = log2(x) * log10(2); fast_log2's error is far below any bin
  // width (see the header note on add_fast).  The scale/offset pair bakes
  // the log10(2) factor and the division by log_step_ into the constructor.
  const double pos = fast_log2(x) * fast_scale_ - fast_offset_;
  if (pos >= static_cast<double>(counts_.size())) {
    ++overflow_;
    return;
  }
  // x >= lo_ held above, but the approximation can put a boundary sample an
  // epsilon below bin 0 — clamp instead of casting a negative double.
  ++counts_[pos > 0.0 ? static_cast<std::size_t>(pos) : 0];
}

void LogHistogram::merge(const LogHistogram& other) {
  PSD_REQUIRE(lo_ == other.lo_ && log_step_ == other.log_step_ &&
                  counts_.size() == other.counts_.size(),
              "LogHistogram::merge requires an identical bin layout");
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  min_seen_ = std::min(min_seen_, other.min_seen_);
  max_seen_ = std::max(max_seen_, other.max_seen_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

double LogHistogram::bin_lower(std::size_t i) const {
  return std::pow(10.0, log_lo_ + log_step_ * static_cast<double>(i));
}

double LogHistogram::quantile(double q) const {
  PSD_REQUIRE(q >= 0.0 && q <= 1.0, "quantile in [0,1]");
  if (total_ == 0) return kNaN;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return min_seen_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      const double lo_log = log_lo_ + log_step_ * static_cast<double>(i);
      return std::pow(10.0, lo_log + frac * log_step_);
    }
    cum = next;
  }
  return max_seen_;
}

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), min_seen_(kInf), max_seen_(-kInf) {
  PSD_REQUIRE(hi > lo, "LinearHistogram needs lo < hi");
  PSD_REQUIRE(bins > 0, "bins must be positive");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void LinearHistogram::add(double x) {
  ++total_;
  min_seen_ = std::min(min_seen_, x);
  max_seen_ = std::max(max_seen_, x);
  if (!(x >= lo_)) {
    ++underflow_;
    return;
  }
  const double pos = (x - lo_) / width_;
  if (pos >= static_cast<double>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(pos)];
}

void LinearHistogram::merge(const LinearHistogram& other) {
  PSD_REQUIRE(lo_ == other.lo_ && width_ == other.width_ &&
                  counts_.size() == other.counts_.size(),
              "LinearHistogram::merge requires an identical bin layout");
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  min_seen_ = std::min(min_seen_, other.min_seen_);
  max_seen_ = std::max(max_seen_, other.max_seen_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

double LinearHistogram::quantile(double q) const {
  PSD_REQUIRE(q >= 0.0 && q <= 1.0, "quantile in [0,1]");
  if (total_ == 0) return kNaN;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return min_seen_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + width_ * (static_cast<double>(i) + frac);
    }
    cum = next;
  }
  return max_seen_;
}

}  // namespace psd
