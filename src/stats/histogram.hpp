// Fixed-layout histograms with quantile queries.
//
// LogHistogram matches the dynamic range of slowdown data (the paper plots
// slowdowns on log axes spanning 1..1000); LinearHistogram serves bounded
// quantities such as utilization.
#pragma once

#include <cstdint>
#include <vector>

namespace psd {

/// Histogram with logarithmically spaced bins between lo and hi, plus
/// underflow/overflow bins.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins_per_decade = 20);

  void add(double x);
  std::uint64_t count() const { return total_; }

  /// Linear-in-log interpolated quantile; NaN when empty.
  double quantile(double q) const;

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  double bin_lower(std::size_t i) const;

 private:
  double lo_, log_lo_, log_step_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
  double min_seen_, max_seen_;
  std::vector<std::uint64_t> counts_;
};

/// Histogram with equal-width bins on [lo, hi].
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::uint64_t count() const { return total_; }
  double quantile(double q) const;
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_[i]; }

 private:
  double lo_, width_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
  double min_seen_, max_seen_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace psd
