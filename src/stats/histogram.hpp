// Fixed-layout histograms with quantile queries.
//
// LogHistogram matches the dynamic range of slowdown data (the paper plots
// slowdowns on log axes spanning 1..1000); LinearHistogram serves bounded
// quantities such as utilization.
#pragma once

#include <cstdint>
#include <vector>

namespace psd {

/// Histogram with logarithmically spaced bins between lo and hi, plus
/// underflow/overflow bins.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins_per_decade = 20);

  void add(double x);

  /// Hot-path add for the rt telemetry fill: identical semantics to add()
  /// except the bin index comes from fast_log2 (common/math.hpp) instead
  /// of std::log10 — roughly 5x cheaper per sample.  The approximation
  /// error (~3e-6 decades) is orders of magnitude below any bin width, so
  /// only a sample within a hair of a boundary can land one bin over
  /// relative to add(); still a deterministic pure function of x.
  void add_fast(double x);

  std::uint64_t count() const { return total_; }

  /// Fold `other` into this histogram.  Both must have the identical bin
  /// layout (same lo/hi/bins_per_decade construction) — the per-shard ->
  /// per-class report fold in src/rt relies on element-wise addition being
  /// exact, so a layout mismatch is a programming error, not a resample.
  void merge(const LogHistogram& other);

  /// Linear-in-log interpolated quantile; NaN when empty.
  double quantile(double q) const;

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  double bin_lower(std::size_t i) const;

 private:
  double lo_, log_lo_, log_step_;
  /// add_fast's bin map precomputed as one multiply-subtract:
  /// pos = log2(x) * fast_scale_ - fast_offset_ (division-free).
  double fast_scale_ = 0.0, fast_offset_ = 0.0;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
  double min_seen_, max_seen_;
  std::vector<std::uint64_t> counts_;
};

/// Histogram with equal-width bins on [lo, hi].
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::uint64_t count() const { return total_; }
  /// Fold `other` in; identical [lo, hi]/bins layout required.
  void merge(const LinearHistogram& other);
  double quantile(double q) const;
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_[i]; }

 private:
  double lo_, width_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
  double min_seen_, max_seen_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace psd
