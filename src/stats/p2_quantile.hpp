// P² (piecewise-parabolic) streaming quantile estimation, Jain & Chlamtac 1985.
//
// O(1) memory per tracked quantile; used where exact percentile collection
// over millions of per-request slowdowns would be wasteful.  Accuracy is
// verified against exact percentiles in tests.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace psd {

/// Streaming estimator for a single quantile q in (0, 1).
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate; exact while fewer than five samples have been seen.
  double value() const;

  std::uint64_t count() const { return n_; }
  double quantile() const { return q_; }

 private:
  void insert_sorted(double x);

  double q_;
  std::uint64_t n_ = 0;
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
};

/// Convenience bundle tracking several quantiles of one stream.
class P2QuantileSet {
 public:
  explicit P2QuantileSet(std::vector<double> quantiles);

  void add(double x);
  double value(std::size_t i) const { return estimators_[i].value(); }
  std::size_t size() const { return estimators_.size(); }
  std::uint64_t count() const;

 private:
  std::vector<P2Quantile> estimators_;
};

}  // namespace psd
