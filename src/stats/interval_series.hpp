// Per-interval aggregation of a time-stamped value stream.
//
// The paper measures class slowdown "for every thousand time units"; this
// class rolls observations into fixed-length windows and keeps one summary
// per window so percentile statistics over windows (Figs. 5, 6) and
// short-timescale traces (Figs. 7, 8) can be computed afterwards.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace psd {

struct IntervalStat {
  Time start = 0.0;       ///< Window start time.
  std::uint64_t count = 0;
  double mean = 0.0;      ///< Mean of observations in the window.
  double max = 0.0;
};

/// Count-weighted index-wise merge of one window series into an
/// accumulator rolling the same (origin, window) grid: start times are
/// taken from the source even for empty windows (downstream settle-time
/// classification files windows by start, and a defaulted 0 would read as
/// pre-onset), means combine by incremental count weighting, maxes by max.
/// Shared by the simulator's cross-node and the rt runtime's cross-shard
/// aggregation so their pairing rules cannot drift apart.
void merge_windows_into(std::vector<IntervalStat>& dst,
                        const std::vector<IntervalStat>& src);

/// Accumulates (time, value) observations into consecutive fixed windows.
/// Observations must arrive in non-decreasing time order.
class IntervalSeries {
 public:
  IntervalSeries(Time origin, Duration window);

  void add(Time t, double value);

  /// Close the currently open window (call once at end of run).
  void finalize();

  /// All completed windows, including empty ones (count == 0, mean == NaN
  /// is avoided: empty windows carry mean 0 and count 0 — callers filter on
  /// count).
  const std::vector<IntervalStat>& windows() const { return windows_; }

  Duration window_length() const { return window_; }

 private:
  void roll_to(Time t);

  Time origin_;
  Duration window_;
  Time current_start_;
  std::uint64_t current_count_ = 0;
  double current_sum_ = 0.0;
  double current_max_ = 0.0;
  bool finalized_ = false;
  std::vector<IntervalStat> windows_;
};

}  // namespace psd
