#include "stats/online.hpp"

#include <algorithm>
#include <cmath>

namespace psd {

void OnlineMoments::add(double x) {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineMoments::merge(const OnlineMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double d = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += d * nb / n;
  m2_ += other.m2_ + d * d * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineMoments::reset() { *this = OnlineMoments{}; }

double OnlineMoments::mean() const { return n_ ? mean_ : kNaN; }

double OnlineMoments::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : kNaN;
}

double OnlineMoments::variance_population() const {
  return n_ ? m2_ / static_cast<double>(n_) : kNaN;
}

double OnlineMoments::stddev() const { return std::sqrt(variance()); }

double OnlineMoments::min() const { return min_; }
double OnlineMoments::max() const { return max_; }

void WeightedMean::add(double value, double weight) {
  if (weight <= 0.0) return;
  w_ += weight;
  mean_ += (value - mean_) * weight / w_;
}

void WeightedMean::merge(const WeightedMean& other) {
  if (other.w_ <= 0.0) return;
  add(other.mean_, other.w_);
}

void WeightedMean::reset() { *this = WeightedMean{}; }

double WeightedMean::mean() const { return w_ > 0.0 ? mean_ : kNaN; }

}  // namespace psd
