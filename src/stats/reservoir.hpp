// Uniform reservoir sampling (Vitter's Algorithm R).
//
// Keeps an unbiased fixed-size sample of an unbounded stream; used when a
// bench needs exact quantiles of per-request slowdowns without retaining
// millions of observations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace psd {

class ReservoirSample {
 public:
  explicit ReservoirSample(std::size_t capacity);

  void add(double x, Rng& rng);

  std::uint64_t seen() const { return seen_; }
  const std::vector<double>& values() const { return values_; }

  /// Exact quantile over the retained sample (linear interpolation).
  double quantile(double q) const;

 private:
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  std::vector<double> values_;
};

}  // namespace psd
