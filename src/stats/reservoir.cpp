#include "stats/reservoir.hpp"

#include "common/error.hpp"
#include "stats/percentile.hpp"

namespace psd {

ReservoirSample::ReservoirSample(std::size_t capacity) : capacity_(capacity) {
  PSD_REQUIRE(capacity > 0, "reservoir capacity must be positive");
  values_.reserve(capacity);
}

void ReservoirSample::add(double x, Rng& rng) {
  ++seen_;
  if (values_.size() < capacity_) {
    values_.push_back(x);
    return;
  }
  const std::uint64_t j = rng.below(seen_);
  if (j < capacity_) values_[static_cast<std::size_t>(j)] = x;
}

double ReservoirSample::quantile(double q) const {
  auto copy = values_;
  return percentile_of(copy, q);
}

}  // namespace psd
