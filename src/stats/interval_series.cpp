#include "stats/interval_series.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psd {

IntervalSeries::IntervalSeries(Time origin, Duration window)
    : origin_(origin), window_(window), current_start_(origin) {
  PSD_REQUIRE(window > 0.0, "window length must be positive");
}

void IntervalSeries::roll_to(Time t) {
  while (t >= current_start_ + window_) {
    IntervalStat s;
    s.start = current_start_;
    s.count = current_count_;
    s.mean = current_count_ ? current_sum_ / static_cast<double>(current_count_)
                            : 0.0;
    s.max = current_count_ ? current_max_ : 0.0;
    windows_.push_back(s);
    current_start_ += window_;
    current_count_ = 0;
    current_sum_ = 0.0;
    current_max_ = 0.0;
  }
}

void IntervalSeries::add(Time t, double value) {
  PSD_CHECK(!finalized_, "add() after finalize()");
  if (t < current_start_) t = current_start_;  // clamp clock jitter
  roll_to(t);
  ++current_count_;
  current_sum_ += value;
  current_max_ = std::max(current_max_, value);
}

void merge_windows_into(std::vector<IntervalStat>& dst,
                        const std::vector<IntervalStat>& src) {
  if (dst.size() < src.size()) dst.resize(src.size());
  for (std::size_t w = 0; w < src.size(); ++w) {
    IntervalStat& d = dst[w];
    d.start = src[w].start;
    if (src[w].count == 0) continue;
    const std::uint64_t total = d.count + src[w].count;
    d.mean += (src[w].mean - d.mean) *
              (static_cast<double>(src[w].count) / static_cast<double>(total));
    d.max = std::max(d.max, src[w].max);
    d.count = total;
  }
}

void IntervalSeries::finalize() {
  if (finalized_) return;
  if (current_count_ > 0) {
    IntervalStat s;
    s.start = current_start_;
    s.count = current_count_;
    s.mean = current_sum_ / static_cast<double>(current_count_);
    s.max = current_max_;
    windows_.push_back(s);
  }
  finalized_ = true;
}

}  // namespace psd
