#include "stats/percentile.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/types.hpp"

namespace psd {

namespace {

double interpolate_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return kNaN;
  if (sorted.size() == 1) return sorted.front();
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double percentile_of(std::vector<double>& values, double q) {
  PSD_REQUIRE(q >= 0.0 && q <= 1.0, "quantile in [0,1]");
  std::sort(values.begin(), values.end());
  return interpolate_sorted(values, q);
}

double percentile_copy(const std::vector<double>& values, double q) {
  auto copy = values;
  return percentile_of(copy, q);
}

std::vector<double> percentiles_of(std::vector<double>& values,
                                   const std::vector<double>& qs) {
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    PSD_REQUIRE(q >= 0.0 && q <= 1.0, "quantile in [0,1]");
    out.push_back(interpolate_sorted(values, q));
  }
  return out;
}

}  // namespace psd
