// Student-t confidence intervals for replication means.
#pragma once

#include <cstddef>
#include <vector>

namespace psd {

struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  std::size_t n = 0;
};

/// 95% two-sided t-interval on the mean of `samples`.
/// half_width == 0 when fewer than two samples.
ConfidenceInterval mean_confidence(const std::vector<double>& samples);

/// Two-sided 97.5% Student-t quantile for `df` degrees of freedom
/// (exact table for df <= 30, normal limit 1.96 beyond).
double t_quantile_975(std::size_t df);

}  // namespace psd
