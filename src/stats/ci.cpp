#include "stats/ci.hpp"

#include <array>
#include <cmath>

#include "stats/online.hpp"

namespace psd {

double t_quantile_975(std::size_t df) {
  // Standard two-sided 95% critical values, df = 1..30.
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= kTable.size()) return kTable[df - 1];
  return 1.96;
}

ConfidenceInterval mean_confidence(const std::vector<double>& samples) {
  ConfidenceInterval ci;
  OnlineMoments m;
  for (double x : samples) m.add(x);
  ci.n = samples.size();
  if (ci.n == 0) return ci;
  ci.mean = m.mean();
  if (ci.n >= 2) {
    const double se = m.stddev() / std::sqrt(static_cast<double>(ci.n));
    ci.half_width = t_quantile_975(ci.n - 1) * se;
  }
  return ci;
}

}  // namespace psd
