#include "stats/convergence.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace psd {

double ratio_settle_time(const std::vector<IntervalStat>& w0,
                         const std::vector<IntervalStat>& wj, double target,
                         double tol, Time onset, Duration window) {
  PSD_REQUIRE(target > 0.0, "ratio target must be positive");
  PSD_REQUIRE(tol > 0.0, "tolerance must be positive");
  PSD_REQUIRE(window > 0.0, "window length must be positive");
  const double lo = target * (1.0 - tol);
  const double hi = target * (1.0 + tol);

  // Per-window decay of the discounted sums: 0.7 halves a window's weight
  // in ~2 windows, so the evaluation tracks roughly the last 3 windows
  // while still blending giants across window borders.
  constexpr double kDecay = 0.7;

  const std::size_t n = std::min(w0.size(), wj.size());
  double sum0 = 0.0, sumj = 0.0, cnt0 = 0.0, cntj = 0.0;
  bool any_valid = false;
  double last_bad_end = -kInf;   // end of the last out-of-band evaluation
  double last_valid_end = -kInf;
  for (std::size_t w = 0; w < n; ++w) {
    const double end = w0[w].start + window;
    if (end <= onset) continue;  // windows before the onset are excluded
    sum0 = sum0 * kDecay + w0[w].mean * static_cast<double>(w0[w].count);
    cnt0 = cnt0 * kDecay + static_cast<double>(w0[w].count);
    sumj = sumj * kDecay + wj[w].mean * static_cast<double>(wj[w].count);
    cntj = cntj * kDecay + static_cast<double>(wj[w].count);
    if (cnt0 <= 0.0 || cntj <= 0.0 || !(sum0 > 0.0)) continue;
    any_valid = true;
    last_valid_end = end;
    const double ratio = (sumj / cntj) / (sum0 / cnt0);
    if (ratio < lo || ratio > hi) last_bad_end = end;
  }
  if (!any_valid) return kNaN;
  if (last_bad_end == -kInf) return 0.0;
  // Converged only if at least one in-band evaluation FOLLOWS the last bad
  // one; a run that ends out of band never settled.
  if (last_bad_end >= last_valid_end) return kNaN;
  return std::max(0.0, last_bad_end - onset);
}

double pooled_window_ratio_median(
    const std::vector<const std::vector<IntervalStat>*>& base,
    const std::vector<const std::vector<IntervalStat>*>& cls) {
  PSD_REQUIRE(base.size() == cls.size(),
              "pooled ratio needs one class series per base series");
  std::vector<double> ratios;
  for (std::size_t s = 0; s < base.size(); ++s) {
    const auto& w0 = *base[s];
    const auto& wc = *cls[s];
    const std::size_t count = std::min(w0.size(), wc.size());
    for (std::size_t w = 0; w < count; ++w) {
      if (w0[w].count > 0 && wc[w].count > 0 && w0[w].mean > 0.0) {
        ratios.push_back(wc[w].mean / w0[w].mean);
      }
    }
  }
  if (ratios.empty()) return kNaN;
  std::sort(ratios.begin(), ratios.end());
  return ratios[ratios.size() / 2];
}

}  // namespace psd
