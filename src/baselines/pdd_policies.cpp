#include "baselines/pdd_policies.hpp"

namespace psd {

std::unique_ptr<SchedulerBackend> make_wtp_backend(std::vector<double> deltas) {
  return std::make_unique<PriorityBackend>(
      std::make_unique<WtpPolicy>(std::move(deltas)));
}

std::unique_ptr<SchedulerBackend> make_pad_backend(std::vector<double> deltas) {
  return std::make_unique<PriorityBackend>(
      std::make_unique<PadPolicy>(std::move(deltas)));
}

std::unique_ptr<SchedulerBackend> make_hpd_backend(std::vector<double> deltas,
                                                   double g) {
  return std::make_unique<PriorityBackend>(
      std::make_unique<HpdPolicy>(std::move(deltas), g));
}

std::unique_ptr<SchedulerBackend> make_strict_backend(
    std::size_t num_classes) {
  return std::make_unique<PriorityBackend>(
      std::make_unique<StrictPolicy>(num_classes));
}

}  // namespace psd
