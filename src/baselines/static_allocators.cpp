#include "baselines/static_allocators.hpp"

#include <numeric>

#include "common/error.hpp"

namespace psd {

EqualShareAllocator::EqualShareAllocator(std::size_t num_classes,
                                         double capacity) {
  PSD_REQUIRE(num_classes > 0, "need at least one class");
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  rates_.assign(num_classes, capacity / static_cast<double>(num_classes));
}

std::vector<double> EqualShareAllocator::allocate(
    const std::vector<double>& lambda_hat) {
  PSD_REQUIRE(lambda_hat.size() == rates_.size(), "estimate size mismatch");
  return rates_;
}

LoadProportionalAllocator::LoadProportionalAllocator(std::size_t num_classes,
                                                     double capacity,
                                                     double mean_size)
    : n_(num_classes), capacity_(capacity), mean_size_(mean_size) {
  PSD_REQUIRE(num_classes > 0, "need at least one class");
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  PSD_REQUIRE(mean_size > 0.0, "mean size must be positive");
}

std::vector<double> LoadProportionalAllocator::allocate(
    const std::vector<double>& lambda_hat) {
  PSD_REQUIRE(lambda_hat.size() == n_, "estimate size mismatch");
  const double total =
      std::accumulate(lambda_hat.begin(), lambda_hat.end(), 0.0);
  std::vector<double> rates(n_);
  if (total <= 0.0) {
    for (auto& r : rates) r = capacity_ / static_cast<double>(n_);
    return rates;
  }
  for (std::size_t i = 0; i < n_; ++i) {
    rates[i] = capacity_ * lambda_hat[i] / total;
    // Keep a trickle for idle classes so they are not starved entirely.
    rates[i] = std::max(rates[i], 1e-3 * capacity_);
  }
  const double sum = std::accumulate(rates.begin(), rates.end(), 0.0);
  for (auto& r : rates) r *= capacity_ / sum;
  return rates;
}

FixedRateAllocator::FixedRateAllocator(std::vector<double> rates)
    : rates_(std::move(rates)) {
  PSD_REQUIRE(!rates_.empty(), "need at least one class");
  for (double r : rates_) PSD_REQUIRE(r > 0.0, "rates must be positive");
}

std::vector<double> FixedRateAllocator::allocate(
    const std::vector<double>& lambda_hat) {
  PSD_REQUIRE(lambda_hat.size() == rates_.size(), "estimate size mismatch");
  return rates_;
}

}  // namespace psd
