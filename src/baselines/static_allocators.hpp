// Rate-allocation baselines that ignore the PSD closed form.
//
//   EqualShareAllocator    — r_i = C/N regardless of load (no differentiation
//                            and no load awareness).
//   LoadProportionalAllocator — r_i proportional to estimated work demand
//                            (load-aware but delta-oblivious: every class
//                            then sees the *same* expected slowdown, i.e.
//                            a ratio of 1).
//   FixedRateAllocator     — operator-pinned static rates (absolute
//                            provisioning, the "absolute DiffServ" contrast).
// Ablation A3 runs these against the eq.-17 allocator.
#pragma once

#include "server/allocator.hpp"

namespace psd {

class EqualShareAllocator final : public RateAllocator {
 public:
  EqualShareAllocator(std::size_t num_classes, double capacity);

  std::vector<double> allocate(const std::vector<double>& lambda_hat) override;
  std::string name() const override { return "equal-share"; }

 private:
  std::vector<double> rates_;
};

class LoadProportionalAllocator final : public RateAllocator {
 public:
  LoadProportionalAllocator(std::size_t num_classes, double capacity,
                            double mean_size);

  std::vector<double> allocate(const std::vector<double>& lambda_hat) override;
  std::string name() const override { return "load-proportional"; }

 private:
  std::size_t n_;
  double capacity_;
  double mean_size_;
};

class FixedRateAllocator final : public RateAllocator {
 public:
  explicit FixedRateAllocator(std::vector<double> rates);

  std::vector<double> allocate(const std::vector<double>& lambda_hat) override;
  std::string name() const override { return "fixed"; }

 private:
  std::vector<double> rates_;
};

}  // namespace psd
