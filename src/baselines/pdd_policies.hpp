// Convenience constructors bundling the PDD priority baselines (WTP / PAD /
// HPD / strict) as complete scheduler backends, plus a delay-based analytic
// helper used by ablation A3 to report what the baselines *do* achieve.
#pragma once

#include <memory>

#include "sched/priority.hpp"

namespace psd {

std::unique_ptr<SchedulerBackend> make_wtp_backend(std::vector<double> deltas);
std::unique_ptr<SchedulerBackend> make_pad_backend(std::vector<double> deltas);
std::unique_ptr<SchedulerBackend> make_hpd_backend(std::vector<double> deltas,
                                                   double g = 0.875);
std::unique_ptr<SchedulerBackend> make_strict_backend(std::size_t num_classes);

}  // namespace psd
