// Contract checking macros.
//
// PSD_REQUIRE guards public-API preconditions (throws std::invalid_argument,
// always on).  PSD_CHECK guards internal invariants (throws std::logic_error,
// always on).  Both sit on hot paths (the event core REQUIREs per event), so
// the throw helpers take only const char* and are marked cold/noinline: the
// call site is a single predicted branch + call, with no std::string
// construction or stream code inlined into the fast path.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace psd::detail {

[[noreturn]] __attribute__((cold, noinline)) inline void throw_require(
    const char* expr, const char* file, int line, const char* msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (msg != nullptr && msg[0] != '\0') os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] __attribute__((cold, noinline)) inline void throw_check(
    const char* expr, const char* file, int line, const char* msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (msg != nullptr && msg[0] != '\0') os << " — " << msg;
  throw std::logic_error(os.str());
}

// std::string overloads for the rare cold sites that build dynamic messages.
[[noreturn]] __attribute__((cold, noinline)) inline void throw_require(
    const char* expr, const char* file, int line, const std::string& msg) {
  throw_require(expr, file, line, msg.c_str());
}

[[noreturn]] __attribute__((cold, noinline)) inline void throw_check(
    const char* expr, const char* file, int line, const std::string& msg) {
  throw_check(expr, file, line, msg.c_str());
}

}  // namespace psd::detail

#define PSD_REQUIRE(cond, msg)                                      \
  do {                                                              \
    if (__builtin_expect(!(cond), 0))                               \
      ::psd::detail::throw_require(#cond, __FILE__, __LINE__, msg); \
  } while (false)

#define PSD_CHECK(cond, msg)                                      \
  do {                                                            \
    if (__builtin_expect(!(cond), 0))                             \
      ::psd::detail::throw_check(#cond, __FILE__, __LINE__, msg); \
  } while (false)

// Terminal "can't happen" marker (exhaustive switch fall-throughs).  A plain
// PSD_CHECK(false, ...) leaves the false-branch fall-through in the CFG, so
// functions ending with it trip -Wreturn-type at -O0; the unconditional
// [[noreturn]] call here terminates control flow for the front end too.
#define PSD_UNREACHABLE(msg) \
  ::psd::detail::throw_check("unreachable", __FILE__, __LINE__, msg)
