// Contract checking macros.
//
// PSD_REQUIRE guards public-API preconditions (throws std::invalid_argument,
// always on).  PSD_CHECK guards internal invariants (throws std::logic_error,
// always on; these sit off hot paths so the cost is negligible).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace psd::detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace psd::detail

#define PSD_REQUIRE(cond, msg)                                      \
  do {                                                              \
    if (!(cond))                                                    \
      ::psd::detail::throw_require(#cond, __FILE__, __LINE__, msg); \
  } while (false)

#define PSD_CHECK(cond, msg)                                      \
  do {                                                            \
    if (!(cond))                                                  \
      ::psd::detail::throw_check(#cond, __FILE__, __LINE__, msg); \
  } while (false)
