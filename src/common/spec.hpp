// The spec registry: one parse()/name() contract over every value-type
// configuration spec in the system.
//
// A "spec" is a small copyable, comparable struct describing one
// configurable axis — a service-time law (DistSpec), an arrival process
// (ArrivalSpec), a nonstationary load shape (LoadProfile), an admission
// policy (AdmissionSpec), a task-assignment policy (AssignmentSpec), a
// cluster topology (ClusterSpec).  Each exposes the same surface:
//
//   static S S::parse(const std::string&)  — inverse of name(); throws
//                                            std::invalid_argument
//                                            (PSD_REQUIRE) on bad input,
//   std::string name() const               — canonical parsable rendering,
//   operator==                             — value comparison.
//
// so `S::parse(s.name()) == s` round-trips for every spec type, and one
// grammar string works identically in psdsim, psdsweep, psdserved,
// psdcluster, campaign specs, and JSONL records.  The CLIs layer their
// error formatting on top (tools/cli_util.hpp parse_spec<S>); everything
// below the tools speaks the library grammar directly.
//
// spec::hint<S>() names the accepted grammar for use in error messages and
// --help text — registered here so a new CLI cannot forget a flag's
// vocabulary when a new spec type appears.
#pragma once

#include <concepts>
#include <string>

#include "admission/admission.hpp"
#include "cluster/assignment.hpp"
#include "dist/factory.hpp"
#include "workload/class_spec.hpp"
#include "workload/load_profile.hpp"

namespace psd::spec {

template <typename S>
concept Spec = std::equality_comparable<S> &&
    requires(const S s, const std::string& text) {
      { s.name() } -> std::convertible_to<std::string>;
      { S::parse(text) } -> std::same_as<S>;
    };

/// Generic front door: spec::parse<DistSpec>("bp:1.5,0.1,100").
template <Spec S>
S parse(const std::string& text) {
  return S::parse(text);
}

/// Generic rendering (symmetry with parse; s.name() works too).
template <Spec S>
std::string name(const S& s) {
  return s.name();
}

/// One-line grammar for error hints and --help text.
template <Spec S>
const char* hint() = delete;

template <>
inline const char* hint<DistSpec>() {
  return "bp:1.5,0.1,100 | det:1 | exp:1 | bexp:1,0.1,10 | "
         "lognormal:1,4 | uniform:0.5,1.5";
}
template <>
inline const char* hint<ArrivalSpec>() {
  return "poisson | det | mmpp:4 | mmpp:8,20,0.2";
}
template <>
inline const char* hint<LoadProfile>() {
  return "ramp:t0,t1,f0,f1 | sin:period,amp | spike:t0,dur,mag | none";
}
template <>
inline const char* hint<AdmissionSpec>() {
  return "none | admit-all | util[:thresh] | slowdown-budget[:budget] | "
         "delta-aware[:thresh] | token-bucket[:thresh[,burst]]";
}
template <>
inline const char* hint<AssignmentSpec>() {
  return "random | rr | lwl | sita | jsq[d]";
}
template <>
inline const char* hint<ClusterSpec>() {
  return "nodes[:policy], e.g. 4 | 4:jsq2 | 8:sita";
}

// The registry's reason to exist: every spec type satisfies the one
// contract, checked at compile time right here.
static_assert(Spec<DistSpec>);
static_assert(Spec<ArrivalSpec>);
static_assert(Spec<LoadProfile>);
static_assert(Spec<AdmissionSpec>);
static_assert(Spec<AssignmentSpec>);
static_assert(Spec<ClusterSpec>);

}  // namespace psd::spec
