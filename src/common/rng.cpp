#include "common/rng.hpp"

#include <cmath>

namespace psd {

double Rng::exponential(double rate) {
  PSD_REQUIRE(rate > 0.0, "exponential rate must be positive");
  return -std::log(uniform01_open_low()) / rate;
}

std::uint64_t Rng::below(std::uint64_t n) {
  PSD_REQUIRE(n > 0, "below(0) is undefined");
  // Lemire's nearly-divisionless bounded sampling with rejection; unbiased.
  std::uint64_t x = engine_();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
    while (lo < threshold) {
      x = engine_();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Rng Rng::fork(std::uint64_t index) const {
  SplitMix64 sm(seed_ ^ 0xA02BDBF7BB3C0A7ULL);
  const std::uint64_t base = sm.next();
  SplitMix64 mix(base + 0x9E3779B97F4A7C15ULL * (index + 1));
  return Rng(mix.next());
}

}  // namespace psd
