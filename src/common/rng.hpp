// Self-contained pseudo-random number generation.
//
// The paper drew variates from a modified GNU Scientific Library; offline we
// implement the generator stack from scratch:
//   * SplitMix64 — seed expansion / stream derivation,
//   * xoshiro256** — the workhorse engine (satisfies UniformRandomBitGenerator),
//   * Rng — convenience wrapper with uniform/exponential draws and
//     deterministic per-replication stream forking.
//
// Stream independence: fork(i) reseeds a child through SplitMix64 on
// (state hash, i), which is the standard recommendation of the xoshiro
// authors for parallel streams.
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace psd {

/// SplitMix64: tiny 64-bit generator used for seeding other generators.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
    // An all-zero state is a fixed point; SplitMix64 cannot produce four
    // consecutive zeros, but keep the guard for cheap safety.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Facade used throughout the library.  One Rng per simulation replication;
/// never shared across threads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9D2C5680F1A3C1ULL) : engine_(seed), seed_(seed) {}

  /// Uniform in [0, 1) with full 53-bit mantissa resolution.
  double uniform01() { return static_cast<double>(engine_() >> 11) * 0x1.0p-53; }

  /// Uniform in (0, 1] — safe as an argument to log().
  double uniform01_open_low() { return 1.0 - uniform01(); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    PSD_REQUIRE(lo <= hi, "uniform bounds out of order");
    return lo + (hi - lo) * uniform01();
  }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n);

  /// Raw 64 random bits.
  std::uint64_t bits() { return engine_(); }

  /// Derive an independent child stream; deterministic in (parent seed, index).
  Rng fork(std::uint64_t index) const;

  std::uint64_t seed() const { return seed_; }

 private:
  Xoshiro256ss engine_;
  std::uint64_t seed_;
};

}  // namespace psd
