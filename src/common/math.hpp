// Small numeric helpers: compensated summation, floating-point comparison,
// grids, and adaptive quadrature (used by tests and by distributions whose
// inverse-moment has no elementary closed form).
#pragma once

#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

namespace psd {

/// Kahan–Babuška compensated accumulator; O(1) state, ~exact for long sums.
class KahanSum {
 public:
  void add(double x) {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  double value() const { return sum_ + comp_; }
  void reset() { sum_ = comp_ = 0.0; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// True when |a-b| <= tol * max(1, |a|, |b|).
bool almost_equal(double a, double b, double tol = 1e-9);

/// |a-b| / max(|b|, floor) — relative error against a reference value b.
double relative_error(double a, double b, double floor = 1e-12);

/// n evenly spaced points from lo to hi inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// n log-spaced points from lo to hi inclusive (lo, hi > 0, n >= 2).
std::vector<double> logspace(double lo, double hi, std::size_t n);

/// Adaptive Simpson quadrature of f over [a, b] to absolute tolerance tol.
double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol = 1e-10);

}  // namespace psd
