// Small numeric helpers: compensated summation, floating-point comparison,
// grids, and adaptive quadrature (used by tests and by distributions whose
// inverse-moment has no elementary closed form).
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace psd {

namespace detail {

/// log2(1 + i/128) at compile time: ln(y) = 2*atanh((y-1)/(y+1)) by series
/// (z <= 1/3 on [1,2], so 20 odd terms are far past double precision),
/// scaled by 1/ln2.  Being constexpr keeps the interpolation table in
/// .rodata with no magic-static guard on the fast_log2 hot path.
constexpr double log2_of_1p(int i) {
  const double y = 1.0 + static_cast<double>(i) / 128.0;
  const double z = (y - 1.0) / (y + 1.0);
  const double z2 = z * z;
  double term = z;
  double sum = 0.0;
  for (int k = 1; k < 41; k += 2) {
    sum += term / static_cast<double>(k);
    term *= z2;
  }
  constexpr double kInvLn2 = 1.4426950408889634073599246810019;
  return 2.0 * sum * kInvLn2;
}

inline constexpr std::array<double, 129> kLog2Table = [] {
  std::array<double, 129> t{};
  for (int i = 0; i <= 128; ++i) {
    t[static_cast<std::size_t>(i)] = log2_of_1p(i);
  }
  return t;
}();

}  // namespace detail

/// Fast approximate log2 for positive normal doubles: the exponent comes
/// straight from the IEEE-754 bits and log2 of the mantissa from a
/// 128-segment linear interpolation (max absolute error ~1.1e-5).  Built
/// for histogram binning on hot paths, where bin widths are orders of
/// magnitude wider than the error — not for analysis.  Zero, negative,
/// subnormal, and non-finite inputs fall back to std::log2, so the result
/// is always a deterministic pure function of x.
inline double fast_log2(double x) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  const std::uint64_t exp_field = (bits >> 52) & 0x7FFu;
  if ((bits >> 63) != 0 || exp_field == 0 || exp_field == 0x7FFu) {
    return std::log2(x);
  }
  const auto& table = detail::kLog2Table;
  const std::uint64_t mant = bits & 0xFFFFFFFFFFFFFull;
  const std::size_t idx = static_cast<std::size_t>(mant >> 45);  // top 7 bits
  const double frac =
      static_cast<double>(mant & ((1ull << 45) - 1)) * (1.0 / (1ull << 45));
  const double mlog = table[idx] + (table[idx + 1] - table[idx]) * frac;
  return static_cast<double>(static_cast<int>(exp_field) - 1023) + mlog;
}

/// Kahan–Babuška compensated accumulator; O(1) state, ~exact for long sums.
class KahanSum {
 public:
  void add(double x) {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  double value() const { return sum_ + comp_; }
  void reset() { sum_ = comp_ = 0.0; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// True when |a-b| <= tol * max(1, |a|, |b|).
bool almost_equal(double a, double b, double tol = 1e-9);

/// |a-b| / max(|b|, floor) — relative error against a reference value b.
double relative_error(double a, double b, double floor = 1e-12);

/// n evenly spaced points from lo to hi inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// n log-spaced points from lo to hi inclusive (lo, hi > 0, n >= 2).
std::vector<double> logspace(double lo, double hi, std::size_t n);

/// Adaptive Simpson quadrature of f over [a, b] to absolute tolerance tol.
double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol = 1e-10);

}  // namespace psd
