// Core scalar aliases shared across the psd library.
//
// The simulator works in continuous time with a server of configurable total
// capacity.  "Paper time units" (1 tu = processing time of an average-size
// request, i.e. E[X]/capacity) are a presentation-layer concept handled by
// src/experiment; everything below that layer uses raw simulator time.
#pragma once

#include <cstdint>
#include <limits>

namespace psd {

/// Simulation clock value (continuous).
using Time = double;
/// Difference of two Time values.
using Duration = double;
/// Amount of work carried by a request, in units of (capacity * time).
/// A request of size s served at rate r completes in s / r time.
using Work = double;
/// Processing rate; the whole server has rate `capacity` (default 1.0).
using Rate = double;
/// Dense zero-based class index; class 0 is the highest class (delta_0 minimal).
using ClassId = std::uint32_t;
/// Monotone per-request identifier, unique within one simulation run.
using RequestId = std::uint64_t;

inline constexpr double kInf = std::numeric_limits<double>::infinity();
inline constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace psd
