#include "common/math.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace psd {

bool almost_equal(double a, double b, double tol) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= tol * scale;
}

double relative_error(double a, double b, double floor) {
  return std::abs(a - b) / std::max(std::abs(b), floor);
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  PSD_REQUIRE(n >= 2, "linspace needs at least two points");
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  PSD_REQUIRE(lo > 0.0 && hi > 0.0, "logspace bounds must be positive");
  auto lin = linspace(std::log(lo), std::log(hi), n);
  for (auto& x : lin) x = std::exp(x);
  lin.back() = hi;
  return lin;
}

namespace {

double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const std::function<double(double)>& f, double a, double fa,
                double b, double fb, double m, double fm, double whole,
                double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive(f, a, fa, m, fm, lm, flm, left, 0.5 * tol, depth - 1) +
         adaptive(f, m, fm, b, fb, rm, frm, right, 0.5 * tol, depth - 1);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol) {
  PSD_REQUIRE(a <= b, "integration bounds out of order");
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(m);
  const double whole = simpson(a, fa, b, fb, fm);
  return adaptive(f, a, fa, b, fb, m, fm, whole, tol, 48);
}

}  // namespace psd
