// Walker/Vose alias method: O(n) setup, O(1) weighted index sampling with a
// single uniform draw.  Backs EmpiricalSampler (weighted resampling) and
// MixtureSampler component selection (replacing the O(log n) cumulative-weight
// binary search).
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace psd {

class AliasTable {
 public:
  /// Weights must be non-empty with positive sum; zero entries are allowed
  /// (they are simply never drawn).
  explicit AliasTable(const std::vector<double>& weights) {
    const std::size_t n = weights.size();
    PSD_REQUIRE(n > 0, "alias table needs at least one weight");
    double total = 0.0;
    for (double w : weights) {
      PSD_REQUIRE(w >= 0.0, "alias weights must be non-negative");
      total += w;
    }
    PSD_REQUIRE(total > 0.0, "alias weights must have positive sum");

    prob_.resize(n);
    alias_.resize(n);
    // Vose's stable two-worklist construction on scaled weights n*w/total.
    std::vector<double> scaled(n);
    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
      (scaled[i] < 1.0 ? small : large).push_back(
          static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const std::uint32_t s = small.back();
      const std::uint32_t l = large.back();
      small.pop_back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] -= 1.0 - scaled[s];
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    // Leftovers are exactly 1 up to rounding; saturate them.
    for (std::uint32_t i : large) {
      prob_[i] = 1.0;
      alias_[i] = i;
    }
    for (std::uint32_t i : small) {
      prob_[i] = 1.0;
      alias_[i] = i;
    }
  }

  /// Draw an index with probability proportional to its weight.  One uniform:
  /// the integer part picks the column, the fractional part the coin flip.
  std::size_t pick(Rng& rng) const {
    const double un = rng.uniform01() * static_cast<double>(prob_.size());
    std::size_t i = static_cast<std::size_t>(un);
    if (i >= prob_.size()) i = prob_.size() - 1;  // u == 1-ulp guard
    return (un - static_cast<double>(i)) < prob_[i] ? i : alias_[i];
  }

  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace psd
