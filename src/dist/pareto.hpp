// Unbounded Pareto(alpha, k): pdf alpha k^alpha x^{-alpha-1} on [k, inf).
// The limiting case p -> inf of the paper's Bounded Pareto; kept around so
// tests can demonstrate which moments stop existing (E[X] for alpha <= 1,
// E[X^2] for alpha <= 2) while E[1/X] = alpha / ((alpha+1) k) always exists.
#pragma once

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "dist/distribution.hpp"

namespace psd {

class Pareto final : public SizeDistribution {
 public:
  Pareto(double alpha, double k) : alpha_(alpha), k_(k) {
    PSD_REQUIRE(alpha > 0.0, "alpha must be positive");
    PSD_REQUIRE(k > 0.0, "lower bound k must be positive");
  }

  double sample(Rng& rng) const override {
    // Inverse CDF on u in (0, 1]: x = k u^{-1/alpha}.
    return k_ * std::pow(rng.uniform01_open_low(), -1.0 / alpha_);
  }
  double mean() const override {
    return alpha_ > 1.0 ? alpha_ * k_ / (alpha_ - 1.0) : kInf;
  }
  double second_moment() const override {
    return alpha_ > 2.0 ? alpha_ * k_ * k_ / (alpha_ - 2.0) : kInf;
  }
  double mean_inverse() const override {
    return alpha_ / ((alpha_ + 1.0) * k_);
  }
  double min_value() const override { return k_; }
  double max_value() const override { return kInf; }

  std::string name() const override {
    std::ostringstream os;
    os << "pareto(" << alpha_ << ',' << k_ << ')';
    return os.str();
  }

 private:
  double alpha_, k_;
};

}  // namespace psd
