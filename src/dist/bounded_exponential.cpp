#include "dist/bounded_exponential.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/math.hpp"

namespace psd {

BoundedExponential::BoundedExponential(double mean, double lo, double hi)
    : m_(mean), lo_(lo), hi_(hi) {
  PSD_REQUIRE(mean > 0.0, "mean must be positive");
  PSD_REQUIRE(lo > 0.0, "lower bound must be positive");
  PSD_REQUIRE(lo < hi, "need lo < hi");
  const double elo = std::exp(-lo_ / m_);
  const double ehi = std::exp(-hi_ / m_);
  z_ = elo - ehi;
  // Antiderivatives of x (1/m) e^{-x/m} and x^2 (1/m) e^{-x/m}:
  //   -(x + m) e^{-x/m}   and   -(x^2 + 2 m x + 2 m^2) e^{-x/m}.
  mean_trunc_ = ((lo_ + m_) * elo - (hi_ + m_) * ehi) / z_;
  m2_ = ((lo_ * lo_ + 2.0 * m_ * lo_ + 2.0 * m_ * m_) * elo -
         (hi_ * hi_ + 2.0 * m_ * hi_ + 2.0 * m_ * m_) * ehi) /
        z_;
  mean_inv_ = integrate([this](double x) { return pdf(x) / x; }, lo_, hi_,
                        1e-12);
}

double BoundedExponential::pdf(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  return std::exp(-x / m_) / (m_ * z_);
}

double BoundedExponential::sample(Rng& rng) const {
  // Inverse CDF: F(x) = (e^{-lo/m} - e^{-x/m}) / Z.
  const double u = rng.uniform01();
  return -m_ * std::log(std::exp(-lo_ / m_) - u * z_);
}

std::string BoundedExponential::name() const {
  std::ostringstream os;
  os << "bexp(" << m_ << ',' << lo_ << ',' << hi_ << ')';
  return os.str();
}

}  // namespace psd
