// Point mass at v: the M/D/1 special case of the paper's eq. 15, and the
// near-constant service demands of the session workload's "home entry" /
// "register" states (§2.2).
#pragma once

#include <sstream>

#include "common/error.hpp"
#include "dist/distribution.hpp"

namespace psd {

class Deterministic final : public SizeDistribution {
 public:
  explicit Deterministic(double value) : v_(value) {
    PSD_REQUIRE(value > 0.0, "deterministic size must be positive");
  }

  double sample(Rng&) const override { return v_; }
  double mean() const override { return v_; }
  double second_moment() const override { return v_ * v_; }
  double mean_inverse() const override { return 1.0 / v_; }
  double min_value() const override { return v_; }
  double max_value() const override { return v_; }

  std::string name() const override {
    std::ostringstream os;
    os << "det(" << v_ << ')';
    return os.str();
  }

  double value() const { return v_; }

 private:
  double v_;
};

}  // namespace psd
