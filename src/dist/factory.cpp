#include "dist/factory.hpp"

#include <cstdio>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "dist/bounded_exponential.hpp"
#include "dist/bounded_pareto.hpp"
#include "dist/deterministic.hpp"
#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"
#include "dist/uniform.hpp"

namespace psd {

namespace {

/// %g (6 significant digits) — the rendering sweep labels have always used;
/// name() must emit the same bytes dist_name() historically did.
std::string short_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

constexpr const char* kDistGrammar =
    "bp:alpha,k,p | det:c | exp:m | bexp:m,lo,hi | lognormal:m,scv | "
    "uniform:a,b";

/// Strict comma-separated doubles (whole tokens must parse).
std::vector<double> parse_params(const std::string& spec,
                                 const std::string& body) {
  std::vector<double> out;
  std::stringstream ss(body);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      std::size_t used = 0;
      const double v = std::stod(item, &used);
      PSD_REQUIRE(used == item.size(), "");
      out.push_back(v);
    } catch (const std::exception&) {
      PSD_REQUIRE(false, "distribution '" + spec +
                             "' has a malformed parameter (expected " +
                             kDistGrammar + ")");
    }
  }
  return out;
}

}  // namespace

const char* DistSpec::kind_name() const {
  switch (kind) {
    case Kind::kBoundedPareto: return "bp";
    case Kind::kDeterministic: return "det";
    case Kind::kExponential: return "exp";
    case Kind::kBoundedExponential: return "bexp";
    case Kind::kLognormal: return "lognormal";
    case Kind::kUniform: return "uniform";
  }
  PSD_UNREACHABLE("unknown distribution kind");
}

std::size_t DistSpec::arity() const {
  switch (kind) {
    case Kind::kDeterministic:
    case Kind::kExponential:
      return 1;
    case Kind::kLognormal:
    case Kind::kUniform:
      return 2;
    case Kind::kBoundedPareto:
    case Kind::kBoundedExponential:
      return 3;
  }
  PSD_UNREACHABLE("unknown distribution kind");
}

std::string DistSpec::name() const {
  std::string out = kind_name();
  const double params[] = {a, b, c};
  const std::size_t n = arity();
  for (std::size_t i = 0; i < n; ++i) {
    out += i == 0 ? ':' : ',';
    out += short_num(params[i]);
  }
  return out;
}

DistSpec DistSpec::parse(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const auto args = colon == std::string::npos
                        ? std::vector<double>{}
                        : parse_params(spec, spec.substr(colon + 1));
  DistSpec out;
  bool known = false;
  auto match = [&](const char* token, Kind k) {
    if (kind != token) return;
    out.kind = k;
    PSD_REQUIRE(args.size() == out.arity(),
                "distribution '" + kind + "' needs " +
                    std::to_string(out.arity()) + " parameters (" +
                    kDistGrammar + ")");
    double p[3] = {0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < args.size(); ++i) p[i] = args[i];
    out.a = p[0];
    out.b = p[1];
    out.c = p[2];
    known = true;
  };
  match("bp", Kind::kBoundedPareto);
  match("det", Kind::kDeterministic);
  match("exp", Kind::kExponential);
  match("bexp", Kind::kBoundedExponential);
  match("lognormal", Kind::kLognormal);
  match("uniform", Kind::kUniform);
  PSD_REQUIRE(known, "unknown distribution '" + spec + "' (expected " +
                         kDistGrammar + ")");
  return out;
}

std::unique_ptr<SizeDistribution> make_distribution(const DistSpec& spec) {
  switch (spec.kind) {
    case DistSpec::Kind::kBoundedPareto:
      return std::make_unique<BoundedPareto>(spec.a, spec.b, spec.c);
    case DistSpec::Kind::kDeterministic:
      return std::make_unique<Deterministic>(spec.a);
    case DistSpec::Kind::kExponential:
      return std::make_unique<Exponential>(spec.a);
    case DistSpec::Kind::kBoundedExponential:
      return std::make_unique<BoundedExponential>(spec.a, spec.b, spec.c);
    case DistSpec::Kind::kLognormal:
      return std::make_unique<Lognormal>(Lognormal::from_mean_scv(spec.a, spec.b));
    case DistSpec::Kind::kUniform:
      return std::make_unique<UniformSize>(spec.a, spec.b);
  }
  PSD_UNREACHABLE("unknown distribution kind");
}

}  // namespace psd
