#include "dist/factory.hpp"

#include "common/error.hpp"
#include "dist/bounded_exponential.hpp"
#include "dist/bounded_pareto.hpp"
#include "dist/deterministic.hpp"
#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"
#include "dist/uniform.hpp"

namespace psd {

std::unique_ptr<SizeDistribution> make_distribution(const DistSpec& spec) {
  switch (spec.kind) {
    case DistSpec::Kind::kBoundedPareto:
      return std::make_unique<BoundedPareto>(spec.a, spec.b, spec.c);
    case DistSpec::Kind::kDeterministic:
      return std::make_unique<Deterministic>(spec.a);
    case DistSpec::Kind::kExponential:
      return std::make_unique<Exponential>(spec.a);
    case DistSpec::Kind::kBoundedExponential:
      return std::make_unique<BoundedExponential>(spec.a, spec.b, spec.c);
    case DistSpec::Kind::kLognormal:
      return std::make_unique<Lognormal>(Lognormal::from_mean_scv(spec.a, spec.b));
    case DistSpec::Kind::kUniform:
      return std::make_unique<UniformSize>(spec.a, spec.b);
  }
  PSD_UNREACHABLE("unknown distribution kind");
}

}  // namespace psd
