// Uniform on [lo, hi], lo > 0.  Light-tailed contrast case:
//   E[X]   = (lo + hi) / 2
//   E[X^2] = (lo^2 + lo hi + hi^2) / 3
//   E[1/X] = ln(hi/lo) / (hi - lo)
#pragma once

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "dist/distribution.hpp"

namespace psd {

class UniformSize final : public SizeDistribution {
 public:
  UniformSize(double lo, double hi) : lo_(lo), hi_(hi) {
    PSD_REQUIRE(lo > 0.0, "lower bound must be positive");
    PSD_REQUIRE(lo < hi, "need lo < hi");
  }

  double sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double second_moment() const override {
    return (lo_ * lo_ + lo_ * hi_ + hi_ * hi_) / 3.0;
  }
  double mean_inverse() const override {
    return std::log(hi_ / lo_) / (hi_ - lo_);
  }
  double min_value() const override { return lo_; }
  double max_value() const override { return hi_; }

  std::string name() const override {
    std::ostringstream os;
    os << "uniform(" << lo_ << ',' << hi_ << ')';
    return os.str();
  }

 private:
  double lo_, hi_;
};

}  // namespace psd
