#include "dist/bounded_pareto.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace psd {

BoundedPareto::BoundedPareto(double alpha, double k, double p)
    : alpha_(alpha), k_(k), p_(p) {
  PSD_REQUIRE(alpha > 0.0, "alpha must be positive");
  PSD_REQUIRE(k > 0.0, "lower bound k must be positive");
  PSD_REQUIRE(k < p, "need k < p");
  one_minus_kp_ = 1.0 - std::pow(k_ / p_, alpha_);
  g_ = alpha_ * std::pow(k_, alpha_) / one_minus_kp_;
}

double BoundedPareto::moment(double n) const {
  // E[X^n] = g \int_k^p x^{n-alpha-1} dx; the antiderivative switches to a
  // logarithm when the exponent n-alpha-1 hits -1.
  const double d = n - alpha_;
  if (std::abs(d) < 1e-12) return g_ * std::log(p_ / k_);
  return g_ * (std::pow(p_, d) - std::pow(k_, d)) / d;
}

double BoundedPareto::pdf(double x) const {
  if (x < k_ || x > p_) return 0.0;
  return g_ * std::pow(x, -alpha_ - 1.0);
}

double BoundedPareto::cdf(double x) const {
  if (x <= k_) return 0.0;
  if (x >= p_) return 1.0;
  return (1.0 - std::pow(k_ / x, alpha_)) / one_minus_kp_;
}

double BoundedPareto::inv_cdf(double u) const {
  PSD_REQUIRE(u >= 0.0 && u < 1.0, "quantile argument must be in [0, 1)");
  // Invert u = (1 - (k/x)^a) / (1 - (k/p)^a).
  return k_ * std::pow(1.0 - u * one_minus_kp_, -1.0 / alpha_);
}

double BoundedPareto::sample(Rng& rng) const { return inv_cdf(rng.uniform01()); }

BoundedPareto BoundedPareto::scaled_by_rate(double rate) const {
  PSD_REQUIRE(rate > 0.0, "rate must be positive");
  return BoundedPareto(alpha_, k_ / rate, p_ / rate);
}

std::string BoundedPareto::name() const {
  std::ostringstream os;
  os << "bp(" << alpha_ << ',' << k_ << ',' << p_ << ')';
  return os.str();
}

}  // namespace psd
