// Value-type distribution specification + factory.
//
// Configs (ScenarioConfig, SessionState, ClassSpec) need a copyable,
// comparable description of a service-time law that can cross thread and
// serialization boundaries; the polymorphic SizeDistribution is built from it
// on demand with make_distribution().
#pragma once

#include <memory>
#include <string>

#include "dist/distribution.hpp"

namespace psd {

struct DistSpec {
  enum class Kind {
    kBoundedPareto,        ///< a = alpha, b = k, c = p.
    kDeterministic,        ///< a = value.
    kExponential,          ///< a = mean.
    kBoundedExponential,   ///< a = mean, b = lo, c = hi.
    kLognormal,            ///< a = mean, b = scv.
    kUniform,              ///< a = lo, b = hi.
  };

  Kind kind = Kind::kBoundedPareto;
  double a = 1.5, b = 0.1, c = 100.0;

  static DistSpec bounded_pareto(double alpha, double k, double p) {
    return {Kind::kBoundedPareto, alpha, k, p};
  }
  static DistSpec deterministic(double value) {
    return {Kind::kDeterministic, value, 0.0, 0.0};
  }
  static DistSpec exponential(double mean) {
    return {Kind::kExponential, mean, 0.0, 0.0};
  }
  static DistSpec bounded_exponential(double mean, double lo, double hi) {
    return {Kind::kBoundedExponential, mean, lo, hi};
  }
  /// Parameterized by target mean and squared coefficient of variation.
  static DistSpec lognormal(double mean, double scv) {
    return {Kind::kLognormal, mean, scv, 0.0};
  }
  static DistSpec uniform(double lo, double hi) {
    return {Kind::kUniform, lo, hi, 0.0};
  }

  /// Short kind token ("bp", "det", ... — the CLI grammar's head).
  const char* kind_name() const;
  /// Parameter count the kind reads from {a, b, c}.
  std::size_t arity() const;

  /// Canonical parsable form, e.g. "bp:1.5,0.1,100" (%g-rendered params —
  /// the exact string sweep labels and JSONL records carry).
  std::string name() const;

  /// Inverse of name().  Accepted grammar: bp:alpha,k,p | det:c | exp:m |
  /// bexp:m,lo,hi | lognormal:m,scv | uniform:a,b.  Throws psd::Error on
  /// malformed input.
  static DistSpec parse(const std::string& spec);

  friend bool operator==(const DistSpec& x, const DistSpec& y) {
    return x.kind == y.kind && x.a == y.a && x.b == y.b && x.c == y.c;
  }
  friend bool operator!=(const DistSpec& x, const DistSpec& y) {
    return !(x == y);
  }
};

/// Instantiate the distribution a spec describes.
std::unique_ptr<SizeDistribution> make_distribution(const DistSpec& spec);

}  // namespace psd
