// Bridge from the sealed SamplerVariant back to the legacy SizeDistribution
// interface.  The moment-analysis APIs (M/G/1 formulas, eq. 17/18 in
// core/psd_allocation) still speak the ABC; wrapping a variant in a
// VariantDistribution — a plain value, no heap — lets hot-path code that holds
// samplers by value feed those APIs without keeping a parallel unique_ptr
// hierarchy alive.
#pragma once

#include "dist/distribution.hpp"
#include "dist/sampler.hpp"

namespace psd {

class VariantDistribution final : public SizeDistribution {
 public:
  explicit VariantDistribution(SamplerVariant sampler)
      : sampler_(std::move(sampler)) {}

  double sample(Rng& rng) const override { return sampler_.sample(rng); }
  double mean() const override { return sampler_.mean(); }
  double second_moment() const override { return sampler_.second_moment(); }
  double mean_inverse() const override { return sampler_.mean_inverse(); }
  double min_value() const override { return sampler_.min_value(); }
  double max_value() const override { return sampler_.max_value(); }
  std::string name() const override { return sampler_.name(); }

  const SamplerVariant& sampler() const { return sampler_; }

 private:
  SamplerVariant sampler_;
};

}  // namespace psd
