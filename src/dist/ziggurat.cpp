#include "dist/ziggurat.hpp"

namespace psd::detail {

// Marsaglia-Tsang constants for the 256-layer exponential ziggurat: R is the
// rightmost rectangle edge, V the common layer area (256 V = total mass 1,
// counting the tail into the base layer).
ZigguratExpTables::ZigguratExpTables() {
  constexpr double kR = 7.69711747013104972;
  constexpr double kV = 3.9496598225815571993e-3;
  x[0] = kV * std::exp(kR);  // base pseudo-width: rectangle + tail area over f(R)
  x[1] = kR;
  y[0] = 0.0;
  y[1] = std::exp(-kR);
  for (int i = 2; i <= 255; ++i) {
    // Equal areas: x[i-1] * (y[i] - y[i-1]) = V, then x on the curve.
    y[i] = y[i - 1] + kV / x[i - 1];
    x[i] = -std::log(y[i]);
  }
  x[256] = 0.0;
  y[256] = 1.0;
}

const ZigguratExpTables kZigExp;

}  // namespace psd::detail
