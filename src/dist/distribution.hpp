// Service-time ("request size") distribution interface.
//
// The paper's analysis (Lemma 1, Theorem 1) needs exactly three scalars from
// the service-time law: E[X], E[X^2], and E[1/X].  The last one is the
// slowdown-specific moment — it exists for every bounded-below distribution
// but diverges for, e.g., the unbounded exponential, which is precisely the
// paper's argument for the Bounded Pareto model.  Implementations expose the
// closed forms, report divergence by throwing std::domain_error, and support
// Lemma-2 rate scaling: if X has law F, the same work served at rate r takes
// time X/r, so scaled_by_rate(r) returns the law of X/r with
//   E[X/r] = E[X]/r,  E[(X/r)^2] = E[X^2]/r^2,  E[r/X] = r E[1/X].
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace psd {

class SizeDistribution {
 public:
  virtual ~SizeDistribution() = default;

  /// Draw one variate (always > 0).
  virtual double sample(Rng& rng) const = 0;

  /// E[X].  May be +inf (e.g. unbounded Pareto with alpha <= 1).
  virtual double mean() const = 0;

  /// E[X^2].  May be +inf.
  virtual double second_moment() const = 0;

  /// E[1/X].  Throws std::domain_error when the integral diverges.
  virtual double mean_inverse() const = 0;

  /// Infimum of the support (0 when unbounded below towards zero).
  virtual double min_value() const = 0;

  /// Supremum of the support (+inf when unbounded above).
  virtual double max_value() const = 0;

  /// Law of X/r: the same work processed at rate r (paper Lemma 2).
  virtual std::unique_ptr<SizeDistribution> scaled_by_rate(double rate)
      const = 0;

  virtual std::unique_ptr<SizeDistribution> clone() const = 0;

  virtual std::string name() const = 0;

  /// Squared coefficient of variation: Var[X] / E[X]^2.
  double scv() const {
    const double m = mean();
    return (second_moment() - m * m) / (m * m);
  }
};

}  // namespace psd
