// Service-time ("request size") distribution interface — the moment-analysis
// view of a law.
//
// The paper's analysis (Lemma 1, Theorem 1) needs exactly three scalars from
// the service-time law: E[X], E[X^2], and E[1/X].  The last one is the
// slowdown-specific moment — it exists for every bounded-below distribution
// but diverges for, e.g., the unbounded exponential, which is precisely the
// paper's argument for the Bounded Pareto model.  Implementations expose the
// closed forms and report divergence by throwing std::domain_error.
//
// The simulation hot path no longer dispatches through this hierarchy: the
// sealed value-semantic SamplerVariant (dist/sampler.hpp) owns per-draw
// sampling, batch generation, and Lemma-2 rate scaling as a value transform.
// This ABC remains the open, analysis-time interface (M/G/1 formulas,
// eq. 17/18); dist/adapter.hpp bridges a variant into it.
#pragma once

#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace psd {

class SizeDistribution {
 public:
  virtual ~SizeDistribution() = default;

  /// Draw one variate (always > 0).
  virtual double sample(Rng& rng) const = 0;

  /// E[X].  May be +inf (e.g. unbounded Pareto with alpha <= 1).
  virtual double mean() const = 0;

  /// E[X^2].  May be +inf.
  virtual double second_moment() const = 0;

  /// E[1/X].  Throws std::domain_error when the integral diverges.
  virtual double mean_inverse() const = 0;

  /// Infimum of the support (0 when unbounded below towards zero).
  virtual double min_value() const = 0;

  /// Supremum of the support (+inf when unbounded above).
  virtual double max_value() const = 0;

  virtual std::string name() const = 0;

  /// Squared coefficient of variation: Var[X] / E[X]^2.
  double scv() const {
    const double m = mean();
    return (second_moment() - m * m) / (m * m);
  }
};

}  // namespace psd
