// Exponential service times (mean m).  Included as the classical M/M/1
// reference point; note E[1/X] diverges (the integral of x^{-1} e^{-x/m}
// blows up at the origin), which is the paper's related-work argument that
// *slowdown* differentiation needs a distribution bounded away from zero.
#pragma once

#include <sstream>

#include "common/error.hpp"
#include "dist/distribution.hpp"

namespace psd {

class Exponential final : public SizeDistribution {
 public:
  explicit Exponential(double mean) : mean_(mean) {
    PSD_REQUIRE(mean > 0.0, "mean must be positive");
  }

  double sample(Rng& rng) const override {
    return rng.exponential(1.0 / mean_);
  }
  double mean() const override { return mean_; }
  double second_moment() const override { return 2.0 * mean_ * mean_; }
  double mean_inverse() const override {
    throw std::domain_error(
        "E[1/X] diverges for the (unbounded) exponential distribution");
  }
  double min_value() const override { return 0.0; }
  double max_value() const override { return kInf; }

  std::string name() const override {
    std::ostringstream os;
    os << "exp(" << mean_ << ')';
    return os.str();
  }

 private:
  double mean_;
};

}  // namespace psd
