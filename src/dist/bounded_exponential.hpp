// Exponential of mean m truncated to [lo, hi], lo > 0.  The minimal fix that
// makes E[1/X] finite for an exponential-shaped law: bounding the support
// away from zero is exactly what the paper's slowdown analysis requires.
//
//   pdf(x) = (1/m) e^{-x/m} / Z on [lo, hi],  Z = e^{-lo/m} - e^{-hi/m}.
//
// E[X] and E[X^2] are elementary; E[1/X] is an exponential-integral and is
// evaluated once by adaptive quadrature at construction.
#pragma once

#include "dist/distribution.hpp"

namespace psd {

class BoundedExponential final : public SizeDistribution {
 public:
  /// `mean` is the mean of the *untruncated* exponential.
  BoundedExponential(double mean, double lo, double hi);

  double sample(Rng& rng) const override;
  double mean() const override { return mean_trunc_; }
  double second_moment() const override { return m2_; }
  double mean_inverse() const override { return mean_inv_; }
  double min_value() const override { return lo_; }
  double max_value() const override { return hi_; }
  std::string name() const override;

  double pdf(double x) const;

 private:
  double m_, lo_, hi_;
  double z_;           ///< Normalizing mass e^{-lo/m} - e^{-hi/m}.
  double mean_trunc_;  ///< E[X] of the truncated law.
  double m2_;          ///< E[X^2].
  double mean_inv_;    ///< E[1/X], by quadrature.
};

}  // namespace psd
