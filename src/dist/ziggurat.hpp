// Ziggurat sampling for the unit exponential (Marsaglia & Tsang 2000, with
// Doornik's double-precision acceptance tests instead of 32-bit integer
// compares).  One 64-bit draw resolves ~98.9% of samples: the low 8 bits pick
// one of 256 equal-area layers, the top 53 bits form the uniform that is
// scaled by the layer width.  Wedge and tail corrections preserve exactness,
// so the output law is Exp(1) to full double precision — only the *stream*
// differs from the inverse-transform -log(u).
//
// Every sampler that draws exponentials (Exponential sizes, Poisson
// interarrivals, MMPP sojourns, session think times) funnels through
// ziggurat_exponential(); see src/dist/README.md for the re-baseline note.
#pragma once

#include <cmath>

#include "common/rng.hpp"

namespace psd {

namespace detail {

struct ZigguratExpTables {
  // Layer widths x[0..256] (decreasing; x[0] is the base pseudo-width
  // V*e^R >= R) and pdf heights y[i] = exp(-x[i]) (y[0] unused).
  double x[257];
  double y[257];
  ZigguratExpTables();
};

extern const ZigguratExpTables kZigExp;

}  // namespace detail

/// One Exp(1) variate.  Consumes one 64-bit draw on the ~98.9% fast path.
inline double ziggurat_exponential(Rng& rng) {
  const auto& t = detail::kZigExp;
  for (;;) {
    const std::uint64_t b = rng.bits();
    const std::size_t i = static_cast<std::size_t>(b & 255u);
    const double u = static_cast<double>(b >> 11) * 0x1.0p-53;
    const double x = u * t.x[i];
    if (x < t.x[i + 1]) return x;  // strictly inside the next-narrower layer
    if (i == 0) {
      // Tail beyond R: memorylessness gives R + Exp(1).
      return t.x[1] - std::log(rng.uniform01_open_low());
    }
    // Wedge: uniform height within the layer vs the true density.
    const double y = t.y[i] + rng.uniform01() * (t.y[i + 1] - t.y[i]);
    if (y < std::exp(-x)) return x;
  }
}

/// Exponential variate with the given rate (mean 1/rate) via the ziggurat.
inline double ziggurat_exponential(Rng& rng, double rate) {
  return ziggurat_exponential(rng) / rate;
}

}  // namespace psd
