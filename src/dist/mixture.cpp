#include "dist/mixture.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace psd {

Mixture::Mixture(std::vector<Component> components)
    : comps_(std::move(components)) {
  PSD_REQUIRE(!comps_.empty(), "mixture needs at least one component");
  double total = 0.0;
  for (const auto& c : comps_) {
    PSD_REQUIRE(c.weight > 0.0, "component weights must be positive");
    PSD_REQUIRE(c.dist != nullptr, "component distribution must be set");
    total += c.weight;
  }
  cum_.reserve(comps_.size());
  double acc = 0.0;
  for (auto& c : comps_) {
    c.weight /= total;
    acc += c.weight;
    cum_.push_back(acc);
  }
  cum_.back() = 1.0;  // guard against rounding in the final bucket
}

double Mixture::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
  const std::size_t i = static_cast<std::size_t>(it - cum_.begin());
  return comps_[std::min(i, comps_.size() - 1)].dist->sample(rng);
}

double Mixture::mean() const {
  double s = 0.0;
  for (const auto& c : comps_) s += c.weight * c.dist->mean();
  return s;
}

double Mixture::second_moment() const {
  double s = 0.0;
  for (const auto& c : comps_) s += c.weight * c.dist->second_moment();
  return s;
}

double Mixture::mean_inverse() const {
  double s = 0.0;
  for (const auto& c : comps_) s += c.weight * c.dist->mean_inverse();
  return s;
}

double Mixture::min_value() const {
  double m = comps_.front().dist->min_value();
  for (const auto& c : comps_) m = std::min(m, c.dist->min_value());
  return m;
}

double Mixture::max_value() const {
  double m = comps_.front().dist->max_value();
  for (const auto& c : comps_) m = std::max(m, c.dist->max_value());
  return m;
}

std::string Mixture::name() const {
  std::ostringstream os;
  os << "mixture(" << comps_.size() << " components)";
  return os.str();
}

}  // namespace psd
