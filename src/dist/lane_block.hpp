// K-lane draw-block storage: the lockstep kernel's slice of the batched
// sampling machinery (ziggurat / alias tables reached through sample_n and
// fill_interarrivals).
//
// The per-task RequestGenerator refills blocks of kBatch interarrival gaps
// followed by kBatch sizes from one per-(run, class) Rng.  The lockstep
// kernel keeps that exact refill protocol — same block length, same
// gaps-then-sizes order, same per-stream Rng — but owns the storage for all
// K lanes x C classes in two flat arrays, so a task's entire draw state is
// contiguous and a refill is two batched table walks writing one cache-
// resident slice.  Because the refill order is preserved verbatim, every
// (lane, class) stream consumes its Rng identically to the per-task path:
// this is half of the bitwise-determinism contract (the other half is the
// kernel's event ordering, src/sim/lane_stepper.hpp).
//
// kBatch must match RequestGenerator::kBatch — a divergence would change
// refill boundaries and thus draw order; the lockstep equivalence tests
// pin this (they compare results bitwise against the generator path).
#pragma once

#include <cstdint>
#include <vector>

#include "dist/sampler.hpp"
#include "workload/arrival.hpp"

namespace psd {

class LaneDrawBlocks {
 public:
  static constexpr std::size_t kBatch = 64;

  LaneDrawBlocks(std::size_t lanes, std::size_t streams)
      : streams_(streams),
        gaps_(lanes * streams * kBatch),
        sizes_(lanes * streams * kBatch),
        cursor_(lanes * streams, kBatch) {}  // kBatch = refill on first use

  double* gap_slice(std::size_t lane, std::size_t stream) {
    return gaps_.data() + (lane * streams_ + stream) * kBatch;
  }
  double* size_slice(std::size_t lane, std::size_t stream) {
    return sizes_.data() + (lane * streams_ + stream) * kBatch;
  }
  std::uint32_t& cursor(std::size_t lane, std::size_t stream) {
    return cursor_[lane * streams_ + stream];
  }

  /// Refill one (lane, stream) slice: kBatch gaps then kBatch sizes from
  /// `rng`, in the generator's draw order, and rewind the cursor.
  void refill(std::size_t lane, std::size_t stream, ArrivalVariant& arrivals,
              const SamplerVariant& sizes, Rng& rng) {
    arrivals.fill_interarrivals(rng, gap_slice(lane, stream), kBatch);
    sizes.sample_n(rng, size_slice(lane, stream), kBatch);
    cursor(lane, stream) = 0;
  }

 private:
  std::size_t streams_;
  std::vector<double> gaps_;         ///< lanes x streams x kBatch.
  std::vector<double> sizes_;        ///< lanes x streams x kBatch.
  std::vector<std::uint32_t> cursor_;  ///< Per (lane, stream) read position.
};

}  // namespace psd
