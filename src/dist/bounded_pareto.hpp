// Bounded Pareto BP(alpha, k, p) — the paper's service-time model (§4.1):
// heavy-tailed like real web object sizes, yet with finite E[X^2] and E[1/X]
// because the support is the bounded interval [k, p].
//
//   pdf(x) = g x^{-alpha-1} on [k, p],  g = alpha k^alpha / (1 - (k/p)^alpha)
//   E[X^n] = g (p^{n-alpha} - k^{n-alpha}) / (n - alpha)   (n != alpha)
//          = g ln(p/k)                                     (n == alpha)
//
// Closed under Lemma-2 rate scaling: X/r ~ BP(alpha, k/r, p/r).
#pragma once

#include "dist/distribution.hpp"

namespace psd {

class BoundedPareto final : public SizeDistribution {
 public:
  /// alpha > 0, 0 < k < p.
  BoundedPareto(double alpha, double k, double p);

  double sample(Rng& rng) const override;
  double mean() const override { return moment(1.0); }
  double second_moment() const override { return moment(2.0); }
  double mean_inverse() const override { return moment(-1.0); }
  double min_value() const override { return k_; }
  double max_value() const override { return p_; }
  std::string name() const override;

  /// Law of X/r ~ BP(alpha, k/r, p/r) (paper Lemma 2).
  BoundedPareto scaled_by_rate(double rate) const;

  /// E[X^n] for any real n (closed form; log form at n == alpha).
  double moment(double n) const;

  double pdf(double x) const;
  double cdf(double x) const;
  /// Quantile function; u in [0, 1).
  double inv_cdf(double u) const;

  double alpha() const { return alpha_; }
  double lower() const { return k_; }
  double upper() const { return p_; }
  /// The pdf prefactor g (pdf(x) = g x^{-alpha-1}).
  double normalizer() const { return g_; }

 private:
  double alpha_, k_, p_;
  double g_;            ///< pdf prefactor.
  double one_minus_kp_; ///< 1 - (k/p)^alpha, cached for inv_cdf.
};

}  // namespace psd
