// Finite mixture of size distributions: component i is chosen with
// probability w_i / sum w and then sampled.  Used to collapse the session
// workload's per-state distributions into one per-class law (visit-weighted
// mixture), which feeds the heterogeneous PSD allocator.
//
// Moments are the weighted averages of component moments — including E[1/X],
// since expectation is linear over the mixture decomposition.
#pragma once

#include <memory>
#include <vector>

#include "dist/distribution.hpp"

namespace psd {

class Mixture final : public SizeDistribution {
 public:
  struct Component {
    double weight = 0.0;  ///< Relative weight (> 0); normalized internally.
    std::unique_ptr<SizeDistribution> dist;
  };

  explicit Mixture(std::vector<Component> components);

  double sample(Rng& rng) const override;
  double mean() const override;
  double second_moment() const override;
  double mean_inverse() const override;
  double min_value() const override;
  double max_value() const override;
  std::string name() const override;

  std::size_t components() const { return comps_.size(); }

 private:
  std::vector<Component> comps_;   ///< Weights normalized to sum 1.
  std::vector<double> cum_;        ///< Cumulative weights for sampling.
};

}  // namespace psd
