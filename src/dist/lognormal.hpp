// Lognormal(mu, sigma): ln X ~ N(mu, sigma^2).  All the paper-relevant
// moments are closed-form (E[X^n] = exp(n mu + n^2 sigma^2 / 2), so E[1/X]
// is just n = -1), making it a convenient moderately-heavy-tailed alternative
// to the Bounded Pareto for sensitivity studies.
#pragma once

#include "dist/distribution.hpp"

namespace psd {

class Lognormal final : public SizeDistribution {
 public:
  /// Natural parameters: mu = E[ln X], sigma = Std[ln X] (sigma > 0).
  Lognormal(double mu, double sigma);

  /// Fit to a target mean and squared coefficient of variation.
  static Lognormal from_mean_scv(double mean, double scv);

  double sample(Rng& rng) const override;
  double mean() const override;
  double second_moment() const override;
  double mean_inverse() const override;
  double min_value() const override { return 0.0; }
  double max_value() const override { return kInf; }
  std::string name() const override;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_, sigma_;
};

}  // namespace psd
