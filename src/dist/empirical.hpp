// Empirical distribution: resamples uniformly from a fixed set of observed
// values (e.g. a recorded trace's request sizes).  Moments are the sample
// moments of the value set.
#pragma once

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "dist/distribution.hpp"

namespace psd {

class Empirical final : public SizeDistribution {
 public:
  explicit Empirical(std::vector<double> values) : values_(std::move(values)) {
    PSD_REQUIRE(!values_.empty(), "empirical distribution needs values");
    double s = 0.0, s2 = 0.0, sinv = 0.0;
    for (double v : values_) {
      PSD_REQUIRE(v > 0.0, "empirical values must be positive");
      s += v;
      s2 += v * v;
      sinv += 1.0 / v;
    }
    const double n = static_cast<double>(values_.size());
    mean_ = s / n;
    m2_ = s2 / n;
    mean_inv_ = sinv / n;
    min_ = *std::min_element(values_.begin(), values_.end());
    max_ = *std::max_element(values_.begin(), values_.end());
  }

  double sample(Rng& rng) const override {
    return values_[rng.below(values_.size())];
  }
  double mean() const override { return mean_; }
  double second_moment() const override { return m2_; }
  double mean_inverse() const override { return mean_inv_; }
  double min_value() const override { return min_; }
  double max_value() const override { return max_; }

  std::string name() const override {
    std::ostringstream os;
    os << "empirical(n=" << values_.size() << ')';
    return os.str();
  }

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  double mean_, m2_, mean_inv_, min_, max_;
};

}  // namespace psd
