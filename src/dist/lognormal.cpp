#include "dist/lognormal.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace psd {

Lognormal::Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  PSD_REQUIRE(sigma > 0.0, "sigma must be positive");
}

Lognormal Lognormal::from_mean_scv(double mean, double scv) {
  PSD_REQUIRE(mean > 0.0, "mean must be positive");
  PSD_REQUIRE(scv > 0.0, "scv must be positive");
  // scv = exp(sigma^2) - 1;  mean = exp(mu + sigma^2/2).
  const double s2 = std::log(1.0 + scv);
  return Lognormal(std::log(mean) - 0.5 * s2, std::sqrt(s2));
}

double Lognormal::sample(Rng& rng) const {
  // Box–Muller on (0,1] uniforms; one fresh pair per variate keeps sampling
  // stateless and replication-deterministic.
  const double u1 = rng.uniform01_open_low();
  const double u2 = rng.uniform01();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return std::exp(mu_ + sigma_ * z);
}

double Lognormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double Lognormal::second_moment() const {
  return std::exp(2.0 * mu_ + 2.0 * sigma_ * sigma_);
}

double Lognormal::mean_inverse() const {
  return std::exp(-mu_ + 0.5 * sigma_ * sigma_);
}

std::string Lognormal::name() const {
  std::ostringstream os;
  os << "lognormal(mu=" << mu_ << ",sigma=" << sigma_ << ')';
  return os.str();
}

}  // namespace psd
