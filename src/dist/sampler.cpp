#include "dist/sampler.hpp"

#include <algorithm>
#include <sstream>

#include "dist/bounded_exponential.hpp"
#include "dist/bounded_pareto.hpp"

namespace psd {

namespace {

std::string render(const char* head, std::initializer_list<double> params) {
  std::ostringstream os;
  os << head << '(';
  bool first = true;
  for (double p : params) {
    if (!first) os << ',';
    os << p;
    first = false;
  }
  os << ')';
  return os.str();
}

}  // namespace

// ---- DeterministicSampler --------------------------------------------------

DeterministicSampler DeterministicSampler::scaled_by_rate(double rate) const {
  PSD_REQUIRE(rate > 0.0, "rate must be positive");
  return DeterministicSampler(v_ / rate);
}

std::string DeterministicSampler::name() const { return render("det", {v_}); }

// ---- ExponentialSampler ----------------------------------------------------

ExponentialSampler ExponentialSampler::scaled_by_rate(double rate) const {
  PSD_REQUIRE(rate > 0.0, "rate must be positive");
  return ExponentialSampler(mean_ / rate);
}

std::string ExponentialSampler::name() const { return render("exp", {mean_}); }

// ---- UniformSampler --------------------------------------------------------

UniformSampler UniformSampler::scaled_by_rate(double rate) const {
  PSD_REQUIRE(rate > 0.0, "rate must be positive");
  return UniformSampler(lo_ / rate, hi_ / rate);
}

std::string UniformSampler::name() const {
  return render("uniform", {lo_, hi_});
}

// ---- BoundedParetoSampler --------------------------------------------------

BoundedParetoSampler::BoundedParetoSampler(double alpha, double k, double p)
    : alpha_(alpha), k_(k), p_(p) {
  // Validation and moments come from the legacy class; only the cached
  // sampling parameters are new.
  const BoundedPareto bp(alpha, k, p);
  one_minus_kp_ = 1.0 - std::pow(k_ / p_, alpha_);
  neg_inv_alpha_ = -1.0 / alpha_;
  mean_ = bp.mean();
  m2_ = bp.second_moment();
  mean_inv_ = bp.mean_inverse();
  pow_ = alpha == 1.0   ? Pow::kInv
         : alpha == 2.0 ? Pow::kInvSqrt
         : alpha == 1.5 ? Pow::kInvCbrtSq
                        : Pow::kGeneral;
}

BoundedParetoSampler::BoundedParetoSampler(const BoundedPareto& bp)
    : BoundedParetoSampler(bp.alpha(), bp.lower(), bp.upper()) {}

BoundedParetoSampler BoundedParetoSampler::scaled_by_rate(double rate) const {
  PSD_REQUIRE(rate > 0.0, "rate must be positive");
  // X/r ~ BP(alpha, k/r, p/r).
  return BoundedParetoSampler(alpha_, k_ / rate, p_ / rate);
}

std::string BoundedParetoSampler::name() const {
  return render("bp", {alpha_, k_, p_});
}

// ---- BoundedExponentialSampler ---------------------------------------------

BoundedExponentialSampler::BoundedExponentialSampler(double mean, double lo,
                                                     double hi)
    : m_(mean), lo_(lo), hi_(hi) {
  const BoundedExponential be(mean, lo, hi);  // validates + quadrature
  elo_ = std::exp(-lo_ / m_);
  z_ = elo_ - std::exp(-hi_ / m_);
  neg_m_ = -m_;
  mean_ = be.mean();
  m2_ = be.second_moment();
  mean_inv_ = be.mean_inverse();
}

BoundedExponentialSampler BoundedExponentialSampler::scaled_by_rate(
    double rate) const {
  PSD_REQUIRE(rate > 0.0, "rate must be positive");
  return BoundedExponentialSampler(m_ / rate, lo_ / rate, hi_ / rate);
}

std::string BoundedExponentialSampler::name() const {
  return render("bexp", {m_, lo_, hi_});
}

// ---- ParetoSampler ---------------------------------------------------------

ParetoSampler::ParetoSampler(double alpha, double k) : alpha_(alpha), k_(k) {
  PSD_REQUIRE(alpha > 0.0, "alpha must be positive");
  PSD_REQUIRE(k > 0.0, "lower bound k must be positive");
  neg_inv_alpha_ = -1.0 / alpha_;
  pow_ = alpha == 1.0   ? Pow::kInv
         : alpha == 2.0 ? Pow::kInvSqrt
         : alpha == 1.5 ? Pow::kInvCbrtSq
                        : Pow::kGeneral;
}

ParetoSampler ParetoSampler::scaled_by_rate(double rate) const {
  PSD_REQUIRE(rate > 0.0, "rate must be positive");
  return ParetoSampler(alpha_, k_ / rate);
}

std::string ParetoSampler::name() const { return render("pareto", {alpha_, k_}); }

// ---- LognormalSampler ------------------------------------------------------

LognormalSampler LognormalSampler::from_mean_scv(double mean, double scv) {
  PSD_REQUIRE(mean > 0.0, "mean must be positive");
  PSD_REQUIRE(scv > 0.0, "scv must be positive");
  const double s2 = std::log(1.0 + scv);
  return LognormalSampler(std::log(mean) - 0.5 * s2, std::sqrt(s2));
}

LognormalSampler LognormalSampler::scaled_by_rate(double rate) const {
  PSD_REQUIRE(rate > 0.0, "rate must be positive");
  return LognormalSampler(mu_ - std::log(rate), sigma_);
}

std::string LognormalSampler::name() const {
  std::ostringstream os;
  os << "lognormal(mu=" << mu_ << ",sigma=" << sigma_ << ')';
  return os.str();
}

// ---- EmpiricalSampler ------------------------------------------------------

EmpiricalSampler::Data::Data(std::vector<double> v, std::vector<double> w)
    : values(std::move(v)),
      weights(std::move(w)),
      alias(weights.empty() ? std::vector<double>(values.size(), 1.0)
                            : weights) {
  double total = 0.0;
  if (!weights.empty()) {
    for (double x : weights) total += x;
  } else {
    total = static_cast<double>(values.size());
  }
  double s = 0.0, s2 = 0.0, sinv = 0.0;
  min = kInf;
  max = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double x = values[i];
    PSD_REQUIRE(x > 0.0, "empirical values must be positive");
    const double wi = weights.empty() ? 1.0 : weights[i];
    s += wi * x;
    s2 += wi * x * x;
    sinv += wi / x;
    if (wi > 0.0) {
      min = std::min(min, x);
      max = std::max(max, x);
    }
  }
  mean = s / total;
  m2 = s2 / total;
  mean_inv = sinv / total;
}

EmpiricalSampler::EmpiricalSampler(std::vector<double> values,
                                   std::vector<double> weights) {
  // Validate before Data's member-init list runs, so bad input fails with
  // an empirical-specific message rather than the alias table's.
  PSD_REQUIRE(!values.empty(), "empirical distribution needs values");
  PSD_REQUIRE(weights.empty() || weights.size() == values.size(),
              "weights/values size mismatch");
  data_ = std::make_shared<const Data>(std::move(values), std::move(weights));
}

EmpiricalSampler EmpiricalSampler::scaled_by_rate(double rate) const {
  PSD_REQUIRE(rate > 0.0, "rate must be positive");
  std::vector<double> scaled;
  scaled.reserve(data_->values.size());
  for (double v : data_->values) scaled.push_back(v / rate);
  return EmpiricalSampler(
      std::make_shared<const Data>(std::move(scaled), data_->weights));
}

std::string EmpiricalSampler::name() const {
  std::ostringstream os;
  os << "empirical(n=" << data_->values.size() << ')';
  return os.str();
}

// ---- MixtureSampler --------------------------------------------------------

MixtureSampler::MixtureSampler(std::vector<MixtureComponent> components) {
  PSD_REQUIRE(!components.empty(), "mixture needs at least one component");
  double total = 0.0;
  for (const auto& c : components) {
    PSD_REQUIRE(c.weight > 0.0, "component weights must be positive");
    total += c.weight;
  }
  std::vector<double> weights;
  weights.reserve(components.size());
  for (auto& c : components) {
    c.weight /= total;
    weights.push_back(c.weight);
  }
  data_ = std::make_shared<const Data>(std::move(components),
                                       std::move(weights));
}

double MixtureSampler::mean() const {
  double s = 0.0;
  for (const auto& c : data_->comps) s += c.weight * c.dist.mean();
  return s;
}

double MixtureSampler::second_moment() const {
  double s = 0.0;
  for (const auto& c : data_->comps) s += c.weight * c.dist.second_moment();
  return s;
}

double MixtureSampler::mean_inverse() const {
  double s = 0.0;
  for (const auto& c : data_->comps) s += c.weight * c.dist.mean_inverse();
  return s;
}

double MixtureSampler::min_value() const {
  double m = data_->comps.front().dist.min_value();
  for (const auto& c : data_->comps) m = std::min(m, c.dist.min_value());
  return m;
}

double MixtureSampler::max_value() const {
  double m = data_->comps.front().dist.max_value();
  for (const auto& c : data_->comps) m = std::max(m, c.dist.max_value());
  return m;
}

MixtureSampler MixtureSampler::scaled_by_rate(double rate) const {
  PSD_REQUIRE(rate > 0.0, "rate must be positive");
  std::vector<MixtureComponent> scaled;
  scaled.reserve(data_->comps.size());
  for (const auto& c : data_->comps) {
    scaled.push_back(MixtureComponent{c.weight, c.dist.scaled_by_rate(rate)});
  }
  return MixtureSampler(std::move(scaled));
}

std::string MixtureSampler::name() const {
  std::ostringstream os;
  os << "mixture(" << data_->comps.size() << " components)";
  return os.str();
}

std::size_t MixtureSampler::components() const { return data_->comps.size(); }

// ---- factory ---------------------------------------------------------------

SamplerVariant make_sampler(const DistSpec& spec) {
  switch (spec.kind) {
    case DistSpec::Kind::kBoundedPareto:
      return BoundedParetoSampler(spec.a, spec.b, spec.c);
    case DistSpec::Kind::kDeterministic:
      return DeterministicSampler(spec.a);
    case DistSpec::Kind::kExponential:
      return ExponentialSampler(spec.a);
    case DistSpec::Kind::kBoundedExponential:
      return BoundedExponentialSampler(spec.a, spec.b, spec.c);
    case DistSpec::Kind::kLognormal:
      return LognormalSampler::from_mean_scv(spec.a, spec.b);
    case DistSpec::Kind::kUniform:
      return UniformSampler(spec.a, spec.b);
  }
  PSD_UNREACHABLE("unknown distribution kind");
}

}  // namespace psd
