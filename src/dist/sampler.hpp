// Sealed, value-semantic service-time samplers.
//
// The open SizeDistribution hierarchy (dist/distribution.hpp) pays a virtual
// call per draw and a heap clone per copy — measurable at millions of samples
// per campaign.  This header closes the set: each law is a plain value type
// with an *inline* sample(), and SamplerVariant is the std::variant over all
// of them.  One std::visit dispatch replaces the vtable, copies are memcpy
// (Empirical/Mixture share immutable tables via shared_ptr, so even they copy
// without allocating), and scaled_by_rate (paper Lemma 2) is a value
// transform instead of a unique_ptr clone.
//
// Fast paths beyond devirtualization:
//   * Exponential draws via the 256-layer ziggurat (dist/ziggurat.hpp),
//   * Empirical and Mixture pick via a Walker alias table (O(1), one draw),
//   * BoundedPareto caches 1 - (k/p)^alpha and -1/alpha, and lowers the
//     pow() to a reciprocal / rsqrt / rcbrt for the common alpha 1, 2, 1.5.
//
// The legacy ABC remains the moment-analysis interface (M/G/1 formulas,
// eq. 17/18); dist/adapter.hpp bridges a SamplerVariant into it.  To add a
// new distribution: write a sampler struct with the methods below, append it
// to SamplerVariant::Alternatives, and extend make_sampler — the compiler
// then enforces exhaustiveness everywhere a visit switches on the set.
#pragma once

#include <cmath>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "dist/alias_table.hpp"
#include "dist/factory.hpp"
#include "dist/ziggurat.hpp"

namespace psd {

class SamplerVariant;
struct MixtureComponent;

namespace detail {

/// t^(-1/3) by bit-hack seed + 4 Newton steps: ~2x faster than libm pow/cbrt
/// and within 1 ulp of pow(t, -1/3) over the inverse-CDF range (t in (0, 1]).
/// Backs the alpha == 1.5 Bounded Pareto fast path: t^(-2/3) = rcbrt(t)^2.
inline double rcbrt(double t) {
  std::uint64_t i;
  __builtin_memcpy(&i, &t, sizeof(i));
  i = 0x553ef0ff289dd796ULL - i / 3;
  double y;
  __builtin_memcpy(&y, &i, sizeof(y));
  for (int k = 0; k < 4; ++k) {
    y = y * (4.0 - t * y * y * y) * (1.0 / 3.0);
  }
  return y;
}

}  // namespace detail

/// Point mass at v.
class DeterministicSampler {
 public:
  explicit DeterministicSampler(double value) : v_(value) {
    PSD_REQUIRE(value > 0.0, "deterministic size must be positive");
  }
  double sample(Rng&) const { return v_; }
  double mean() const { return v_; }
  double second_moment() const { return v_ * v_; }
  double mean_inverse() const { return 1.0 / v_; }
  double min_value() const { return v_; }
  double max_value() const { return v_; }
  DeterministicSampler scaled_by_rate(double rate) const;
  std::string name() const;

 private:
  double v_;
};

/// Exponential of mean m; draws through the ziggurat.
class ExponentialSampler {
 public:
  explicit ExponentialSampler(double mean) : mean_(mean) {
    PSD_REQUIRE(mean > 0.0, "mean must be positive");
  }
  double sample(Rng& rng) const { return mean_ * ziggurat_exponential(rng); }
  double mean() const { return mean_; }
  double second_moment() const { return 2.0 * mean_ * mean_; }
  [[noreturn]] double mean_inverse() const {
    throw std::domain_error(
        "E[1/X] diverges for the (unbounded) exponential distribution");
  }
  double min_value() const { return 0.0; }
  double max_value() const { return kInf; }
  ExponentialSampler scaled_by_rate(double rate) const;
  std::string name() const;

 private:
  double mean_;
};

/// Uniform on [lo, hi], lo > 0.
class UniformSampler {
 public:
  UniformSampler(double lo, double hi) : lo_(lo), span_(hi - lo), hi_(hi) {
    PSD_REQUIRE(lo > 0.0, "lower bound must be positive");
    PSD_REQUIRE(lo < hi, "need lo < hi");
  }
  double sample(Rng& rng) const { return lo_ + span_ * rng.uniform01(); }
  double mean() const { return 0.5 * (lo_ + hi_); }
  double second_moment() const {
    return (lo_ * lo_ + lo_ * hi_ + hi_ * hi_) / 3.0;
  }
  double mean_inverse() const { return std::log(hi_ / lo_) / span_; }
  double min_value() const { return lo_; }
  double max_value() const { return hi_; }
  UniformSampler scaled_by_rate(double rate) const;
  std::string name() const;

 private:
  double lo_, span_, hi_;
};

class BoundedPareto;

/// Bounded Pareto BP(alpha, k, p): cached-parameter inverse transform.
class BoundedParetoSampler {
 public:
  BoundedParetoSampler(double alpha, double k, double p);
  /// Same law as an existing analysis-side BoundedPareto — call sites that
  /// keep one named distribution for moments can derive the sampler from it
  /// instead of re-typing the parameters.
  explicit BoundedParetoSampler(const BoundedPareto& bp);

  double sample(Rng& rng) const {
    // Invert u = (1 - (k/x)^a) / (1 - (k/p)^a): x = k t^{-1/alpha} with
    // t = 1 - u (1 - (k/p)^a).  The pow() lowers to cheaper primitives for
    // the alphas every paper scenario uses (1, 1.5, 2).
    const double t = 1.0 - rng.uniform01() * one_minus_kp_;
    switch (pow_) {
      case Pow::kInv:
        return k_ / t;  // alpha == 1
      case Pow::kInvSqrt:
        return k_ / std::sqrt(t);  // alpha == 2
      case Pow::kInvCbrtSq: {      // alpha == 1.5: t^{-2/3} = rcbrt(t)^2
        const double y = detail::rcbrt(t);
        return k_ * y * y;
      }
      case Pow::kGeneral:
        break;
    }
    return k_ * std::pow(t, neg_inv_alpha_);
  }
  double mean() const { return mean_; }
  double second_moment() const { return m2_; }
  double mean_inverse() const { return mean_inv_; }
  double min_value() const { return k_; }
  double max_value() const { return p_; }
  BoundedParetoSampler scaled_by_rate(double rate) const;
  std::string name() const;

  double alpha() const { return alpha_; }

 private:
  enum class Pow : std::uint8_t { kGeneral, kInv, kInvSqrt, kInvCbrtSq };
  double alpha_, k_, p_;
  double one_minus_kp_, neg_inv_alpha_;
  double mean_, m2_, mean_inv_;
  Pow pow_;
};

/// Exponential of mean m truncated to [lo, hi]: cached inverse transform.
class BoundedExponentialSampler {
 public:
  BoundedExponentialSampler(double mean, double lo, double hi);

  double sample(Rng& rng) const {
    // F(x) = (e^{-lo/m} - e^{-x/m}) / Z, so x = -m log(e^{-lo/m} - u Z).
    return neg_m_ * std::log(elo_ - rng.uniform01() * z_);
  }
  double mean() const { return mean_; }
  double second_moment() const { return m2_; }
  double mean_inverse() const { return mean_inv_; }
  double min_value() const { return lo_; }
  double max_value() const { return hi_; }
  BoundedExponentialSampler scaled_by_rate(double rate) const;
  std::string name() const;

 private:
  double m_, lo_, hi_;
  double elo_, z_, neg_m_;
  double mean_, m2_, mean_inv_;
};

/// Unbounded Pareto(alpha, k).
class ParetoSampler {
 public:
  ParetoSampler(double alpha, double k);

  double sample(Rng& rng) const {
    const double t = rng.uniform01_open_low();
    switch (pow_) {
      case Pow::kInv:
        return k_ / t;
      case Pow::kInvSqrt:
        return k_ / std::sqrt(t);
      case Pow::kInvCbrtSq: {
        const double y = detail::rcbrt(t);
        return k_ * y * y;
      }
      case Pow::kGeneral:
        break;
    }
    return k_ * std::pow(t, neg_inv_alpha_);
  }
  double mean() const {
    return alpha_ > 1.0 ? alpha_ * k_ / (alpha_ - 1.0) : kInf;
  }
  double second_moment() const {
    return alpha_ > 2.0 ? alpha_ * k_ * k_ / (alpha_ - 2.0) : kInf;
  }
  double mean_inverse() const { return alpha_ / ((alpha_ + 1.0) * k_); }
  double min_value() const { return k_; }
  double max_value() const { return kInf; }
  ParetoSampler scaled_by_rate(double rate) const;
  std::string name() const;

 private:
  enum class Pow : std::uint8_t { kGeneral, kInv, kInvSqrt, kInvCbrtSq };
  double alpha_, k_, neg_inv_alpha_;
  Pow pow_;
};

/// Lognormal(mu, sigma) via Box-Muller (same stream as the legacy class).
class LognormalSampler {
 public:
  LognormalSampler(double mu, double sigma) : mu_(mu), sigma_(sigma) {
    PSD_REQUIRE(sigma > 0.0, "sigma must be positive");
  }
  static LognormalSampler from_mean_scv(double mean, double scv);

  double sample(Rng& rng) const {
    const double u1 = rng.uniform01_open_low();
    const double u2 = rng.uniform01();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return std::exp(mu_ + sigma_ * z);
  }
  double mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }
  double second_moment() const {
    return std::exp(2.0 * mu_ + 2.0 * sigma_ * sigma_);
  }
  double mean_inverse() const { return std::exp(-mu_ + 0.5 * sigma_ * sigma_); }
  double min_value() const { return 0.0; }
  double max_value() const { return kInf; }
  LognormalSampler scaled_by_rate(double rate) const;
  std::string name() const;

 private:
  double mu_, sigma_;
};

/// Weighted resampling from a fixed value set via an alias table.  Uniform
/// weights (the legacy Empirical behaviour) are the default.  Copies share
/// the immutable table — no allocation per copy.
class EmpiricalSampler {
 public:
  explicit EmpiricalSampler(std::vector<double> values,
                            std::vector<double> weights = {});

  double sample(Rng& rng) const {
    const Data& d = *data_;
    return d.values[d.alias.pick(rng)];
  }
  double mean() const { return data_->mean; }
  double second_moment() const { return data_->m2; }
  double mean_inverse() const { return data_->mean_inv; }
  double min_value() const { return data_->min; }
  double max_value() const { return data_->max; }
  EmpiricalSampler scaled_by_rate(double rate) const;
  std::string name() const;

  const std::vector<double>& values() const { return data_->values; }

 private:
  struct Data {
    std::vector<double> values;
    std::vector<double> weights;  ///< Normalized; empty == uniform.
    AliasTable alias;
    double mean, m2, mean_inv, min, max;
    Data(std::vector<double> v, std::vector<double> w);
  };
  explicit EmpiricalSampler(std::shared_ptr<const Data> data)
      : data_(std::move(data)) {}
  std::shared_ptr<const Data> data_;
};

/// Finite mixture of samplers; component picked by alias table.  Copies share
/// the immutable component set.
class MixtureSampler {
 public:
  explicit MixtureSampler(std::vector<MixtureComponent> components);

  double sample(Rng& rng) const;  // inline below (needs SamplerVariant)
  /// Batched draw with the component pick hoisted out of the per-draw
  /// dispatch: alias-pick a block of components first, then draw each
  /// component's positions in one grouped pass — one inner variant dispatch
  /// per component per block instead of one per sample.  Consumes the rng
  /// stream in (picks..., component-0 draws..., component-1 draws...) order
  /// per block, which differs from n repeated sample() calls; scalar
  /// sample() is unchanged.
  void sample_n(Rng& rng, double* out, std::size_t n) const;
  double mean() const;
  double second_moment() const;
  double mean_inverse() const;
  double min_value() const;
  double max_value() const;
  MixtureSampler scaled_by_rate(double rate) const;
  std::string name() const;

  std::size_t components() const;

 private:
  struct Data;
  explicit MixtureSampler(std::shared_ptr<const Data> data)
      : data_(std::move(data)) {}
  std::shared_ptr<const Data> data_;
};

/// The sealed set.  Copy/assign never allocate; sample() is one visit with
/// every alternative's draw inlined at the call site.
class SamplerVariant {
 public:
  using Alternatives =
      std::variant<BoundedParetoSampler, DeterministicSampler,
                   ExponentialSampler, BoundedExponentialSampler,
                   LognormalSampler, UniformSampler, ParetoSampler,
                   EmpiricalSampler, MixtureSampler>;

  // Implicit from any alternative: call sites pass the concrete sampler.
  template <typename S,
            typename = std::enable_if_t<
                std::is_constructible_v<Alternatives, S&&> &&
                !std::is_same_v<std::decay_t<S>, SamplerVariant>>>
  SamplerVariant(S&& sampler) : alt_(std::forward<S>(sampler)) {}

  double sample(Rng& rng) const {
    return std::visit([&rng](const auto& s) { return s.sample(rng); }, alt_);
  }

  /// Batch draw: one dispatch for n samples — the generator refill path.
  /// Alternatives with their own sample_n (the mixture's alias-pick-then-
  /// grouped-draws block) take it; the rest loop their inlined sample().
  void sample_n(Rng& rng, double* out, std::size_t n) const {
    std::visit(
        [&](const auto& s) {
          if constexpr (requires { s.sample_n(rng, out, n); }) {
            s.sample_n(rng, out, n);
          } else {
            for (std::size_t i = 0; i < n; ++i) out[i] = s.sample(rng);
          }
        },
        alt_);
  }

  double mean() const {
    return std::visit([](const auto& s) { return s.mean(); }, alt_);
  }
  double second_moment() const {
    return std::visit([](const auto& s) { return s.second_moment(); }, alt_);
  }
  /// Throws std::domain_error when E[1/X] diverges.
  double mean_inverse() const {
    return std::visit([](const auto& s) { return s.mean_inverse(); }, alt_);
  }
  double min_value() const {
    return std::visit([](const auto& s) { return s.min_value(); }, alt_);
  }
  double max_value() const {
    return std::visit([](const auto& s) { return s.max_value(); }, alt_);
  }
  double scv() const {
    const double m = mean();
    return (second_moment() - m * m) / (m * m);
  }

  /// Lemma-2 rate scaling as a value transform (no heap round-trip).
  SamplerVariant scaled_by_rate(double rate) const {
    PSD_REQUIRE(rate > 0.0, "rate must be positive");
    return std::visit(
        [rate](const auto& s) { return SamplerVariant(s.scaled_by_rate(rate)); },
        alt_);
  }

  std::string name() const {
    return std::visit([](const auto& s) { return s.name(); }, alt_);
  }

  template <typename F>
  decltype(auto) visit(F&& f) const {
    return std::visit(std::forward<F>(f), alt_);
  }

  template <typename S>
  const S* get_if() const {
    return std::get_if<S>(&alt_);
  }

 private:
  Alternatives alt_;
};

struct MixtureComponent {
  double weight = 0.0;  ///< Relative weight (> 0); normalized internally.
  SamplerVariant dist;
};

/// Mixture payload: components + alias table over their weights.  Defined
/// here (not in the .cpp) so sample() inlines the alias pick and the inner
/// component visit at the call site.
struct MixtureSampler::Data {
  std::vector<MixtureComponent> comps;  ///< Weights normalized to sum 1.
  AliasTable alias;

  Data(std::vector<MixtureComponent> components, std::vector<double> weights)
      : comps(std::move(components)), alias(weights) {}
};

inline double MixtureSampler::sample(Rng& rng) const {
  const Data& d = *data_;
  return d.comps[d.alias.pick(rng)].dist.sample(rng);
}

inline void MixtureSampler::sample_n(Rng& rng, double* out,
                                     std::size_t n) const {
  const Data& d = *data_;
  const std::size_t num_comps = d.comps.size();
  // Fixed-size pick block keeps this allocation-free at any n (the steady
  // state of a campaign must not touch the heap — see
  // SteadyStateSamplingIsAllocationFree).
  constexpr std::size_t kBlock = 256;
  std::uint32_t pick[kBlock];
  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t m = std::min(kBlock, n - base);
    for (std::size_t i = 0; i < m; ++i) {
      pick[i] = static_cast<std::uint32_t>(d.alias.pick(rng));
    }
    for (std::size_t c = 0; c < num_comps; ++c) {
      d.comps[c].dist.visit([&](const auto& s) {
        for (std::size_t i = 0; i < m; ++i) {
          if (pick[i] == c) out[base + i] = s.sample(rng);
        }
      });
    }
  }
}

/// Instantiate the sampler a DistSpec describes (the variant twin of
/// make_distribution).
SamplerVariant make_sampler(const DistSpec& spec);

}  // namespace psd
