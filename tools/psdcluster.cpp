// psdcluster — multi-node PSD serving cluster (src/cluster + src/rt).
//
//   psdcluster --nodes 4 --policy jsq2 --classes 1,2 --load 0.6
//   psdcluster --cluster 4:sita --kill-node 3 --kill-at 1.5 --duration 4
//   psdcluster --nodes 4 --policy sita --check 0.15       (CI smoke)
//
// N in-process serving runtimes (each with its own shards and seqlock
// snapshots) behind one dispatcher running the task-assignment policies the
// simulator validates, steered by a GLOBAL controller that re-runs the
// paper's eq.-17 allocator against the alive cluster capacity and splits
// the rates across nodes — holding per-class slowdown ratios cluster-wide,
// including through a mid-run node kill.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "psd.hpp"
#include "../bench/json_bench.hpp"
#include "cli_util.hpp"
#include "cluster/cluster_runtime.hpp"
#include "rt_flags.hpp"

namespace {

using namespace psd;

const char* kUsage =
    R"(psdcluster — multi-node PSD serving cluster (src/cluster over src/rt)

cluster topology:
  --nodes N               serving nodes                      (default 2)
  --policy SPEC           assignment: random | rr | lwl | sita | jsq[d]
                          (default rr; jsq2 = least-loaded of 2 sampled)
  --cluster SPEC          both at once: "N[:policy]", e.g. 4:jsq2
  --rebalance-ms MS       global reallocation period         (default 50)
  --kill-node I           remove node I mid-run (0-based; needs --kill-at)
  --kill-at SEC           when to remove it (dispatch stops, its metrics
                          freeze, capacity shrinks, cluster re-converges)
  --stats-out FILE        stream cluster stats JSONL while running
                          (schema psd.cluster.stats.v1)

per-node runtime (shared grammar with psdserved; --load is per-SHARD
utilization, so total offered load scales with --nodes x --shards):
  --classes D1,D2[,...]   --load F          --shares S1,S2[,...]
  --dist SPEC             --arrivals SPEC   --profile SPEC
  --admission SPEC        --converge-tol F  --shards N
  --loadgens N            --duration SEC    --warmup SEC
  --mean-service-us U     --period-ms MS    --allocator NAME
  --burst SEC             --seed N          --pin
  (see psdserved --help for each; --allocator selects the GLOBAL
   allocator — node controllers run rate-less)

checks & output:
  --check F               exit 1 unless the cluster-wide windowed-median
                          ratio error is <= F (and, with a kill, the
                          ratios re-settled; per-node error is reported
                          but not gated — 1/N the samples, kill noise)
  --bench-out FILE        append a JSONL perf record (suite "cluster")
  --help                  this text
)";

[[noreturn]] void usage(int code) {
  std::cout << kUsage;
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  rt::ClusterRtConfig cfg;
  std::string bench_out;
  double check_tol = -1.0;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw cli::CliError(arg + " needs a value (see --help)");
        }
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") usage(0);
      else if (cli::parse_rt_flag(arg, value, cfg.node)) {
        // Shared per-node runtime grammar (tools/rt_flags.hpp).
      }
      else if (arg == "--nodes")
        cfg.nodes = static_cast<std::size_t>(
            cli::parse_uint(arg, value(), "--nodes 4"));
      else if (arg == "--policy")
        cfg.assignment = AssignmentSpec::parse(value());
      else if (arg == "--cluster") {
        const ClusterSpec spec = ClusterSpec::parse(value());
        cfg.nodes = spec.nodes;
        cfg.assignment = spec.assignment;
      } else if (arg == "--rebalance-ms")
        cfg.rebalance_period =
            cli::parse_double(arg, value(), "--rebalance-ms 50") * 1e-3;
      else if (arg == "--kill-node")
        cfg.kill_node = static_cast<std::size_t>(
            cli::parse_uint(arg, value(), "--kill-node 3"));
      else if (arg == "--kill-at")
        cfg.kill_at = cli::parse_double(arg, value(), "--kill-at 1.5");
      else if (arg == "--stats-out") cfg.stats_path = value();
      else if (arg == "--check")
        check_tol = cli::parse_double(arg, value(), "--check 0.15");
      else if (arg == "--bench-out") bench_out = value();
      else {
        std::cerr << "error: unknown option '" << arg << "'\n";
        usage(2);
      }
    }
  } catch (const cli::CliError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  try {
    cfg.validate();
    const SamplerVariant dist = make_sampler(cfg.node.size_dist);

    std::cout << "cluster: " << cfg.nodes << " node(s) x " << cfg.node.shards
              << " shard(s), assignment " << cfg.assignment.name()
              << ", rebalance every " << cfg.rebalance_period * 1e3
              << "ms\nserving " << cfg.node.delta.size()
              << " classes at per-shard load " << cfg.node.load << " for "
              << cfg.node.duration << "s (warmup " << cfg.node.warmup
              << "s), E[X]=" << Table::fmt(dist.mean(), 4) << " in "
              << cfg.node.mean_service_seconds * 1e6 << "us";
    if (cfg.kill_at >= 0.0) {
      std::cout << "; killing node " << cfg.kill_node << " at t="
                << cfg.kill_at << "s";
    }
    std::cout << "...\n\n";

    rt::ClusterRuntime cluster(cfg, rt::SteadyClock());
    const rt::ClusterReport r = cluster.run();

    Table per_class({"class", "delta", "completed", "dropped", "S measured",
                     "ratio p50", "target", "err%", "settle s"});
    for (std::size_t c = 0; c < r.cls.size(); ++c) {
      const auto& cl = r.cls[c];
      const double err =
          c > 0 ? (cl.window_ratio_p50 / cl.target_ratio - 1.0) * 100.0 : 0.0;
      per_class.add_row(
          {std::to_string(c + 1), Table::fmt(cl.delta, 2),
           std::to_string(cl.completed), std::to_string(cl.dropped),
           Table::fmt(cl.mean_slowdown, 3),
           c > 0 ? Table::fmt(cl.window_ratio_p50, 3) : "1.000",
           Table::fmt(cl.target_ratio, 2), c > 0 ? Table::fmt(err, 1) : "-",
           Table::fmt(cl.settle_seconds, 2)});
    }
    per_class.print(std::cout);
    std::cout << "\n";

    Table per_node({"node", "alive", "dispatched", "completed", "outstanding",
                    "node err%"});
    for (std::size_t i = 0; i < r.node.size(); ++i) {
      const auto& nd = r.node[i];
      per_node.add_row(
          {std::to_string(i), nd.alive ? "yes" : "KILLED",
           std::to_string(nd.dispatched),
           std::to_string(nd.rt.completed_total),
           std::to_string(nd.rt.outstanding),
           Table::fmt(nd.rt.max_window_ratio_error * 100.0, 1)});
    }
    per_node.print(std::cout);

    std::cout << "\nthroughput: produced " << r.produced << ", completed "
              << r.completed_total << " (post-warmup), dropped " << r.dropped
              << ", unfinished " << r.outstanding;
    if (r.lost_to_kill > 0) {
      std::cout << ", lost to kill " << r.lost_to_kill;
    }
    std::cout << " over " << Table::fmt(r.elapsed, 2) << "s\n";
    std::cout << "global controller: " << r.global_ticks << " ticks, "
              << r.rebalances << " rebalances; dispatch "
              << Table::fmt(r.mean_dispatch_ns, 0) << " ns/req\n";
    std::cout << "ratio error (windowed median): cluster-wide "
              << Table::fmt(r.max_window_ratio_error * 100.0, 1)
              << "%, worst surviving node "
              << Table::fmt(r.cross_node_ratio_error * 100.0, 1) << "%\n";
    if (std::isfinite(r.settle_onset)) {
      std::cout << "re-convergence after t=" << Table::fmt(r.settle_onset, 2)
                << "s: max settle " << Table::fmt(r.max_settle_seconds, 2)
                << "s (band +-"
                << Table::fmt(cfg.node.converge_tol * 100, 0) << "%)\n";
    }

    if (!bench_out.empty()) {
      using bench::json_num;
      std::ostringstream os;
      os << "{\"suite\":\"cluster\",\"bench\":\"serve_"
         << cfg.assignment.name() << "\",\"impl\":\"psdcluster\",\"nodes\":"
         << cfg.nodes << ",\"classes\":" << cfg.node.delta.size()
         << ",\"ns_per_op\":" << json_num(r.mean_dispatch_ns)
         << ",\"window_ratio_error\":" << json_num(r.max_window_ratio_error)
         << ",\"cross_node_error\":" << json_num(r.cross_node_ratio_error)
         << ",\"iters\":" << r.completed_total << "}\n";
      std::ofstream out(bench_out, std::ios::app);
      out << os.str();
      std::cout << os.str();
    }

    if (check_tol >= 0.0) {
      if (!(r.max_window_ratio_error <= check_tol)) {
        std::cerr << "CLUSTER RATIO CHECK FAILED: cluster-wide error "
                  << r.max_window_ratio_error * 100 << "% > tolerance "
                  << check_tol * 100 << "%\n";
        return 1;
      }
      if (cfg.kill_at >= 0.0 && !std::isfinite(r.max_settle_seconds)) {
        std::cerr << "CLUSTER RATIO CHECK FAILED: ratios never re-settled "
                  << "after the node kill\n";
        return 1;
      }
      std::cout << "cluster ratio check passed (<= " << check_tol * 100
                << "%)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
