// Shared RtConfig flag block for the serving CLIs.
//
// psdserved and psdcluster configure the same per-node runtime (classes,
// load, distributions, topology, control loop, observability); this header
// holds that flag grammar ONCE so the two front ends cannot drift.  Each
// CLI keeps its own usage text and its own tool-specific flags (replay /
// checks for psdserved, cluster topology / kill schedule for psdcluster)
// and falls through to parse_rt_flag() for everything shared.  The flag
// spellings here are psdserved's originals, unchanged.
#pragma once

#include <functional>
#include <string>

#include "cli_util.hpp"
#include "rt/runtime.hpp"

namespace psd::cli {

/// Apply one shared RtConfig flag.  `value` consumes the flag's argument
/// (throwing CliError when it is missing).  Returns false when `arg` is not
/// a shared flag — the caller then tries its tool-specific spellings.
inline bool parse_rt_flag(const std::string& arg,
                          const std::function<std::string()>& value,
                          rt::RtConfig& cfg) {
  if (arg == "--classes")
    cfg.delta = parse_list(arg, value(), "--classes 1,2,4");
  else if (arg == "--load")
    cfg.load = normalize_load(arg, parse_double(arg, value(), "--load 0.6"));
  else if (arg == "--shares")
    cfg.load_share = parse_list(arg, value(), "--shares 0.7,0.3");
  else if (arg == "--dist")
    cfg.size_dist = parse_dist(arg, value());
  else if (arg == "--arrivals")
    cfg.arrivals = parse_arrival_spec(arg, value());
  else if (arg == "--profile")
    cfg.profile = parse_profile(arg, value());
  else if (arg == "--admission")
    cfg.admission = parse_admission(arg, value());
  else if (arg == "--converge-tol")
    cfg.converge_tol = parse_double(arg, value(), "--converge-tol 0.25");
  else if (arg == "--shards")
    cfg.shards =
        static_cast<std::size_t>(parse_uint(arg, value(), "--shards 2"));
  else if (arg == "--loadgens")
    cfg.loadgens =
        static_cast<std::size_t>(parse_uint(arg, value(), "--loadgens 2"));
  else if (arg == "--duration")
    cfg.duration = parse_double(arg, value(), "--duration 3");
  else if (arg == "--warmup")
    cfg.warmup = parse_double(arg, value(), "--warmup 0.5");
  else if (arg == "--mean-service-us")
    cfg.mean_service_seconds =
        parse_double(arg, value(), "--mean-service-us 100") * 1e-6;
  else if (arg == "--period-ms")
    cfg.controller_period =
        parse_double(arg, value(), "--period-ms 50") * 1e-3;
  else if (arg == "--allocator")
    cfg.allocator = parse_allocator(arg, value());
  else if (arg == "--burst")
    cfg.bucket_burst_seconds = parse_double(arg, value(), "--burst 0.1");
  else if (arg == "--seed")
    cfg.seed = parse_uint(arg, value(), "--seed 42");
  else if (arg == "--pin")
    cfg.pin_threads = true;
  else if (arg == "--telemetry")
    cfg.obs.enabled = true;
  else if (arg == "--stats-interval")
    cfg.obs.stats_interval =
        parse_double(arg, value(), "--stats-interval 0.5");
  else if (arg == "--metrics-port") {
    cfg.obs.metrics_port =
        static_cast<int>(parse_uint(arg, value(), "--metrics-port 9464"));
    cfg.obs.enabled = true;
  } else if (arg == "--obs-profile") {
    cfg.obs.profile = true;
    cfg.obs.enabled = true;
  } else if (arg == "--trace-sample") {
    cfg.obs.trace_sample_period = static_cast<unsigned>(
        parse_uint(arg, value(), "--trace-sample 64"));
  } else if (arg == "--slo") {
    cfg.obs.slo_rules = value();
    cfg.obs.enabled = true;
  } else if (arg == "--slo-dump") {
    cfg.obs.flight_prefix = value();
  } else {
    return false;
  }
  return true;
}

}  // namespace psd::cli
