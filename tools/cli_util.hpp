// Shared command-line parsing for the psd tools (psdsim, psdsweep).
//
// Every numeric conversion validates its input and throws CliError with a
// one-line message plus a usage hint — a typo'd `--dist bp:x,y,z` or
// `--classes a,b` must print one helpful line, not terminate() on an
// unhandled std::invalid_argument from a bare std::stod.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"
#include "sweep/grid.hpp"

namespace psd::cli {

struct CliError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] inline void fail(const std::string& what, const std::string& got,
                              const std::string& hint) {
  throw CliError(what + ", got '" + got + "' (hint: " + hint + ")");
}

/// Strict double: the whole token must parse (no trailing junk).
inline double parse_double(const std::string& opt, const std::string& s,
                           const std::string& hint) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    fail(opt + " expects a number", s, hint);
  }
}

inline std::uint64_t parse_uint(const std::string& opt, const std::string& s,
                                const std::string& hint) {
  try {
    std::size_t used = 0;
    if (!s.empty() && s[0] == '-') throw std::invalid_argument("negative");
    const unsigned long long v = std::stoull(s, &used);
    if (used != s.size()) throw std::invalid_argument("trailing junk");
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    fail(opt + " expects a non-negative integer", s, hint);
  }
}

/// Comma-separated doubles; rejects empty items ("1,,2") and junk.
inline std::vector<double> parse_list(const std::string& opt,
                                      const std::string& s,
                                      const std::string& hint) {
  std::vector<double> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(parse_double(opt, item, hint));
  }
  if (out.empty()) fail(opt + " expects a comma-separated list", s, hint);
  return out;
}

inline DistSpec parse_dist(const std::string& opt, const std::string& s) {
  const std::string hint = "bp:1.5,0.1,100 | det:1 | exp:1 | bexp:1,0.1,10 | "
                           "lognormal:1,4 | uniform:0.5,1.5";
  const auto colon = s.find(':');
  const std::string kind = s.substr(0, colon);
  const auto args = colon == std::string::npos
                        ? std::vector<double>{}
                        : parse_list(opt, s.substr(colon + 1), hint);
  auto need = [&](std::size_t n) {
    if (args.size() != n) {
      fail(opt + ": distribution '" + kind + "' needs " +
               std::to_string(n) + " parameters",
           s, hint);
    }
  };
  if (kind == "bp") {
    need(3);
    return DistSpec::bounded_pareto(args[0], args[1], args[2]);
  }
  if (kind == "det") {
    need(1);
    return DistSpec::deterministic(args[0]);
  }
  if (kind == "exp") {
    need(1);
    return DistSpec::exponential(args[0]);
  }
  if (kind == "bexp") {
    need(3);
    return DistSpec::bounded_exponential(args[0], args[1], args[2]);
  }
  if (kind == "lognormal") {
    need(2);
    return DistSpec::lognormal(args[0], args[1]);
  }
  if (kind == "uniform") {
    need(2);
    return DistSpec::uniform(args[0], args[1]);
  }
  fail(opt + ": unknown distribution", s, hint);
}

// Enum parsers invert the canonical *_name tables from sweep/grid.cpp, so a
// value printable in JSONL/labels is by construction also parsable here.
inline BackendKind parse_backend(const std::string& opt,
                                 const std::string& s) {
  for (auto k : {BackendKind::kDedicated, BackendKind::kSfq,
                 BackendKind::kLottery, BackendKind::kWtp, BackendKind::kPad,
                 BackendKind::kHpd, BackendKind::kStrict}) {
    if (s == backend_name(k)) return k;
  }
  fail(opt + ": unknown backend", s,
       "dedicated | sfq | lottery | wtp | pad | hpd | strict");
}

inline AllocatorKind parse_allocator(const std::string& opt,
                                     const std::string& s) {
  for (auto k : {AllocatorKind::kPsd, AllocatorKind::kAdaptivePsd,
                 AllocatorKind::kEqualShare, AllocatorKind::kLoadProportional,
                 AllocatorKind::kNone}) {
    if (s == allocator_name(k)) return k;
  }
  fail(opt + ": unknown allocator", s,
       "psd | adaptive | equal | loadprop | none");
}

inline RateChangePolicy parse_rate_change(const std::string& opt,
                                          const std::string& s) {
  for (auto p : {RateChangePolicy::kRescaleRemaining,
                 RateChangePolicy::kFinishAtOldRate}) {
    if (s == rate_change_name(p)) return p;
  }
  fail(opt + ": unknown rate-change policy", s, "rescale | finish");
}

/// Load-profile spec -> LoadProfile (library grammar, CliError on typos).
inline LoadProfile parse_profile(const std::string& opt,
                                 const std::string& s) {
  try {
    return LoadProfile::parse(s);
  } catch (const std::exception& e) {
    // Strip the PSD_REQUIRE "precondition failed: (...) at file:line — "
    // prefix; the CLI surface wants the human half of the message only.
    const std::string what = e.what();
    const auto dash = what.rfind(" — ");
    fail(opt + ": " +
             (dash == std::string::npos ? what
                                        : what.substr(dash + sizeof(" — ") -
                                                      sizeof(""))),
         s, "ramp:t0,t1,f0,f1 | sin:period,amp | spike:t0,dur,mag | none");
  }
}

/// Admission spec -> AdmissionSpec (library grammar, CliError on typos).
inline AdmissionSpec parse_admission(const std::string& opt,
                                     const std::string& s) {
  try {
    return AdmissionSpec::parse(s);
  } catch (const std::exception& e) {
    const std::string what = e.what();
    const auto dash = what.rfind(" — ");
    fail(opt + ": " +
             (dash == std::string::npos ? what
                                        : what.substr(dash + sizeof(" — ") -
                                                      sizeof(""))),
         s,
         "none | admit-all | util[:thresh] | slowdown-budget[:budget] | "
         "delta-aware[:thresh] | token-bucket[:thresh[,burst]]");
  }
}

/// Arrival-process spec: poisson | det | mmpp:burst[,sojourn[,duty]].
/// `burst` = high-phase rate over the mean (>= 1), `sojourn` = mean
/// high-phase length in mean interarrivals, `duty` = high-phase time
/// fraction (small duty -> ON-OFF).
inline ArrivalSpec parse_arrival_spec(const std::string& opt,
                                      const std::string& s) {
  const std::string hint = "poisson | det | mmpp:4 | mmpp:8,20,0.2";
  const auto colon = s.find(':');
  const std::string kind = s.substr(0, colon);
  ArrivalSpec spec;
  if (kind == "poisson" || kind == "det" || kind == "deterministic") {
    if (colon != std::string::npos) {
      fail(opt + ": '" + kind + "' takes no parameters", s, hint);
    }
    spec.kind = kind == "poisson" ? ArrivalKind::kPoisson
                                  : ArrivalKind::kDeterministic;
    return spec;
  }
  if (kind != "mmpp") fail(opt + ": unknown arrival process", s, hint);
  const auto args = colon == std::string::npos
                        ? std::vector<double>{}
                        : parse_list(opt, s.substr(colon + 1), hint);
  if (args.empty() || args.size() > 3) {
    fail(opt + ": mmpp needs 1-3 parameters (burst[,sojourn[,duty]])", s,
         hint);
  }
  spec.kind = ArrivalKind::kBursty;
  spec.burstiness = args[0];
  if (args.size() >= 2) spec.sojourn = args[1];
  if (args.size() >= 3) spec.duty = args[2];
  if (spec.burstiness < 1.0 || spec.sojourn <= 0.0 || spec.duty <= 0.0 ||
      spec.duty >= 1.0) {
    fail(opt + ": mmpp needs burst >= 1, sojourn > 0, duty in (0,1)", s,
         hint);
  }
  return spec;
}

inline AssignmentPolicy parse_assignment(const std::string& opt,
                                         const std::string& s) {
  for (auto p : {AssignmentPolicy::kRandom, AssignmentPolicy::kRoundRobin,
                 AssignmentPolicy::kLeastWorkLeft,
                 AssignmentPolicy::kSizeInterval}) {
    if (s == assignment_policy_name(p)) return p;
  }
  fail(opt + ": unknown assignment policy", s, "random | rr | lwl | sita");
}

/// Loads may be given as fractions (0.6) or percents (60); anything > 1 is
/// percent.  Exactly 1 is rejected rather than guessed at: as a fraction it
/// is an unstable utilization, and silently reading it as 1% would run the
/// campaign at the wrong operating point.
inline double normalize_load(const std::string& opt, double v) {
  if (v == 1.0) {
    fail(opt + ": load 1 is ambiguous (1.0 = unstable, 1% = write 0.01)",
         "1", "--loads 30,60,90 (percent) or --loads 0.3,0.6,0.9");
  }
  return v < 1.0 ? v : v / 100.0;
}

/// Split on `sep`, trimming ASCII whitespace around items; empty items are
/// dropped ("a, b," -> {"a","b"}).
inline std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) {
    const auto b = item.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    const auto e = item.find_last_not_of(" \t");
    out.push_back(item.substr(b, e - b + 1));
  }
  return out;
}

}  // namespace psd::cli
