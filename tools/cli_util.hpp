// Shared command-line parsing for the psd tools (psdsim, psdsweep,
// psdserved, psdcluster).
//
// Every numeric conversion validates its input and throws CliError with a
// one-line message plus a usage hint — a typo'd `--dist bp:x,y,z` or
// `--classes a,b` must print one helpful line, not terminate() on an
// unhandled std::invalid_argument from a bare std::stod.
//
// Spec-valued flags (--dist, --arrivals, --profile, --admission, --policy,
// --cluster) all route through the common/spec.hpp registry: parse_spec<S>
// wraps S::parse with CLI error formatting, so every tool accepts exactly
// the library grammar and a new spec type needs no per-tool parser.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/spec.hpp"
#include "experiment/scenario.hpp"
#include "sweep/grid.hpp"

namespace psd::cli {

struct CliError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] inline void fail(const std::string& what, const std::string& got,
                              const std::string& hint) {
  throw CliError(what + ", got '" + got + "' (hint: " + hint + ")");
}

/// Strict double: the whole token must parse (no trailing junk).
inline double parse_double(const std::string& opt, const std::string& s,
                           const std::string& hint) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    fail(opt + " expects a number", s, hint);
  }
}

inline std::uint64_t parse_uint(const std::string& opt, const std::string& s,
                                const std::string& hint) {
  try {
    std::size_t used = 0;
    if (!s.empty() && s[0] == '-') throw std::invalid_argument("negative");
    const unsigned long long v = std::stoull(s, &used);
    if (used != s.size()) throw std::invalid_argument("trailing junk");
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    fail(opt + " expects a non-negative integer", s, hint);
  }
}

/// Comma-separated doubles; rejects empty items ("1,,2") and junk.
inline std::vector<double> parse_list(const std::string& opt,
                                      const std::string& s,
                                      const std::string& hint) {
  std::vector<double> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(parse_double(opt, item, hint));
  }
  if (out.empty()) fail(opt + " expects a comma-separated list", s, hint);
  return out;
}

/// Spec-valued flag -> spec type S via the common/spec.hpp registry
/// (library grammar, CliError on typos).  Strips the PSD_REQUIRE
/// "precondition failed: (...) at file:line — " prefix; the CLI surface
/// wants the human half of the message only.
template <spec::Spec S>
S parse_spec(const std::string& opt, const std::string& s) {
  try {
    return S::parse(s);
  } catch (const std::exception& e) {
    const std::string what = e.what();
    const auto dash = what.rfind(" — ");
    fail(opt + ": " +
             (dash == std::string::npos ? what
                                        : what.substr(dash + sizeof(" — ") -
                                                      sizeof(""))),
         s, spec::hint<S>());
  }
}

inline DistSpec parse_dist(const std::string& opt, const std::string& s) {
  return parse_spec<DistSpec>(opt, s);
}

// Enum parsers invert the canonical *_name tables from sweep/grid.cpp, so a
// value printable in JSONL/labels is by construction also parsable here.
inline BackendKind parse_backend(const std::string& opt,
                                 const std::string& s) {
  for (auto k : {BackendKind::kDedicated, BackendKind::kSfq,
                 BackendKind::kLottery, BackendKind::kWtp, BackendKind::kPad,
                 BackendKind::kHpd, BackendKind::kStrict}) {
    if (s == backend_name(k)) return k;
  }
  fail(opt + ": unknown backend", s,
       "dedicated | sfq | lottery | wtp | pad | hpd | strict");
}

inline AllocatorKind parse_allocator(const std::string& opt,
                                     const std::string& s) {
  for (auto k : {AllocatorKind::kPsd, AllocatorKind::kAdaptivePsd,
                 AllocatorKind::kEqualShare, AllocatorKind::kLoadProportional,
                 AllocatorKind::kNone}) {
    if (s == allocator_name(k)) return k;
  }
  fail(opt + ": unknown allocator", s,
       "psd | adaptive | equal | loadprop | none");
}

inline RateChangePolicy parse_rate_change(const std::string& opt,
                                          const std::string& s) {
  for (auto p : {RateChangePolicy::kRescaleRemaining,
                 RateChangePolicy::kFinishAtOldRate}) {
    if (s == rate_change_name(p)) return p;
  }
  fail(opt + ": unknown rate-change policy", s, "rescale | finish");
}

/// Load-profile spec -> LoadProfile (library grammar, CliError on typos).
inline LoadProfile parse_profile(const std::string& opt,
                                 const std::string& s) {
  return parse_spec<LoadProfile>(opt, s);
}

/// Admission spec -> AdmissionSpec (library grammar, CliError on typos).
inline AdmissionSpec parse_admission(const std::string& opt,
                                     const std::string& s) {
  return parse_spec<AdmissionSpec>(opt, s);
}

/// Arrival-process spec: poisson | det | mmpp:burst[,sojourn[,duty]].
/// `burst` = high-phase rate over the mean (>= 1), `sojourn` = mean
/// high-phase length in mean interarrivals, `duty` = high-phase time
/// fraction (small duty -> ON-OFF).
inline ArrivalSpec parse_arrival_spec(const std::string& opt,
                                      const std::string& s) {
  return parse_spec<ArrivalSpec>(opt, s);
}

/// Assignment spec: random | rr | lwl | sita | jsq[d] (e.g. jsq2).
inline AssignmentSpec parse_assignment(const std::string& opt,
                                       const std::string& s) {
  return parse_spec<AssignmentSpec>(opt, s);
}

/// Cluster topology spec: nodes[:policy] (e.g. 4 | 4:jsq2 | 8:sita).
inline ClusterSpec parse_cluster(const std::string& opt,
                                 const std::string& s) {
  return parse_spec<ClusterSpec>(opt, s);
}

/// Loads may be given as fractions (0.6) or percents (60); anything > 1 is
/// percent.  Exactly 1 is rejected rather than guessed at: as a fraction it
/// is an unstable utilization, and silently reading it as 1% would run the
/// campaign at the wrong operating point.
inline double normalize_load(const std::string& opt, double v) {
  if (v == 1.0) {
    fail(opt + ": load 1 is ambiguous (1.0 = unstable, 1% = write 0.01)",
         "1", "--loads 30,60,90 (percent) or --loads 0.3,0.6,0.9");
  }
  return v < 1.0 ? v : v / 100.0;
}

/// Split on `sep`, trimming ASCII whitespace around items; empty items are
/// dropped ("a, b," -> {"a","b"}).
inline std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) {
    const auto b = item.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    const auto e = item.find_last_not_of(" \t");
    out.push_back(item.substr(b, e - b + 1));
  }
  return out;
}

}  // namespace psd::cli
