#!/usr/bin/env python3
"""Perf regression gate over BENCH_*.json (JSONL) records.

Compares a freshly measured records file against the checked-in baseline and
fails (exit 1) when any gated benchmark's ns_per_op regressed by more than
the allowed fraction.  Records are keyed on (suite, bench, impl) for
dedup — when a file holds several records for one key (append-mode reruns)
the LAST one wins, the files being append-only logs — and gated by
(suite, bench): a gated bench is expected to have one impl per file.

By default the gate covers the simulator suite's full_server_* benches
(BENCH_hot_path.json).  `--suite rt` / `--suite workload` gate the
real-time runtime's (BENCH_rt.json) and arrival-layer's
(BENCH_workload.json) records instead: every bench present in the baseline
for that suite is gated, so committing a baseline record is what arms its
gate.  A bench present only in the fresh records (a new bench measured
against an older baseline) is reported as "new record" and skipped rather
than crashing or failing — commit the refreshed baseline to arm it.

Usage:
  tools/bench_gate.py fresh.json baseline.json \
      --bench full_server_load60 [--bench three_class ...] \
      [--suite simulator] [--threshold 25]
"""

import argparse
import json
import sys


def load_records(path):
    records = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}: bad JSONL line: {err}\n  {line}")
            key = (rec.get("suite"), rec.get("bench"), rec.get("impl"))
            records[key] = rec  # last record wins
    return records


def write_summary_md(path, suite, allowed, rows):
    """Append a bench-delta markdown table (the $GITHUB_STEP_SUMMARY shape).

    Append, not truncate: several gate invocations (one per suite) share one
    summary file in CI.
    """

    def fmt_ns(v):
        return f"{float(v):.1f}" if v is not None else "—"

    def fmt_delta(d):
        return f"{d:+.1%}" if d is not None else "—"

    badge = {"OK": "✅", "REGRESSED": "❌", "new": "🆕", "missing": "❌"}
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(f"### Bench gate: `{suite}` (threshold {allowed:.0%})\n\n")
        fh.write("| bench | fresh ns/op | baseline ns/op | delta | |\n")
        fh.write("|---|---:|---:|---:|---|\n")
        for bench, fresh_ns, base_ns, delta, verdict in rows:
            fh.write(
                f"| `{bench}` | {fmt_ns(fresh_ns)} | {fmt_ns(base_ns)} "
                f"| {fmt_delta(delta)} | {badge.get(verdict, verdict)} "
                f"{verdict} |\n"
            )
        fh.write("\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh", help="just-measured records file")
    ap.add_argument("baseline", help="checked-in baseline records file")
    ap.add_argument(
        "--suite",
        default="simulator",
        help="suite whose records to gate (default: simulator)",
    )
    ap.add_argument(
        "--bench",
        action="append",
        default=[],
        help="bench name to gate (repeatable); default: all of the "
        "baseline's full_server_* benches for the simulator suite, every "
        "baseline bench for any other suite",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="allowed ns_per_op increase in PERCENT (default 25)",
    )
    ap.add_argument(
        "--max-regress",
        type=float,
        default=None,
        help="legacy spelling: allowed fractional increase (0.25 == "
        "--threshold 25); wins over --threshold when both are given",
    )
    ap.add_argument(
        "--summary-md",
        default=None,
        metavar="PATH",
        help="append a markdown bench-delta table to PATH (pass "
        '"$GITHUB_STEP_SUMMARY" in CI for a per-run report)',
    )
    args = ap.parse_args()

    allowed = (
        args.max_regress if args.max_regress is not None
        else args.threshold / 100.0
    )

    fresh = load_records(args.fresh)
    base = load_records(args.baseline)

    def in_suite(key):
        return key[0] == args.suite

    if args.bench:
        gated = args.bench
    elif args.suite == "simulator":
        # Back-compat: the hot-path file carries sampling-layer records the
        # gate has never covered; only the end-to-end benches are gated.
        gated = sorted(
            {k[1] for k in base if in_suite(k) and k[1].startswith("full_server")}
        )
    else:
        # Union of baseline and fresh: baseline-only benches fail (a gated
        # bench vanished), fresh-only benches are announced and skipped (a
        # new bench vs an old baseline must not crash the gate).
        gated = sorted(
            {k[1] for k in base if in_suite(k)}
            | {k[1] for k in fresh if in_suite(k)}
        )
    if not gated:
        raise SystemExit(
            f"no benches to gate (no {args.suite} records in either file)"
        )

    failures = []
    rows = []  # (bench, fresh_ns, base_ns, delta, verdict) for --summary-md
    for bench in gated:
        fresh_rec = next(
            (r for k, r in fresh.items() if k[1] == bench and in_suite(k)),
            None,
        )
        base_rec = next(
            (r for k, r in base.items() if k[1] == bench and in_suite(k)),
            None,
        )
        if base_rec is None:
            print(f"[gate] {bench}: new record, skipping (no baseline yet)")
            fresh_ns = fresh_rec.get("ns_per_op") if fresh_rec else None
            rows.append((bench, fresh_ns, None, None, "new"))
            continue
        if fresh_rec is None:
            failures.append(f"{bench}: missing from fresh records")
            rows.append((bench, None, base_rec.get("ns_per_op"), None,
                         "missing"))
            continue
        try:
            fresh_ns = float(fresh_rec["ns_per_op"])
            base_ns = float(base_rec["ns_per_op"])
        except (KeyError, TypeError, ValueError):
            failures.append(f"{bench}: record lacks a numeric ns_per_op")
            continue
        ratio = fresh_ns / base_ns
        verdict = "OK" if ratio <= 1.0 + allowed else "REGRESSED"
        print(
            f"[gate] {bench}: {fresh_ns:.1f} ns vs baseline {base_ns:.1f} ns "
            f"({ratio - 1.0:+.1%}) {verdict}"
        )
        rows.append((bench, fresh_ns, base_ns, ratio - 1.0, verdict))
        if verdict != "OK":
            failures.append(
                f"{bench}: {fresh_ns:.1f} ns vs {base_ns:.1f} ns baseline "
                f"(> {allowed:.0%} regression)"
            )

    if args.summary_md:
        write_summary_md(args.summary_md, args.suite, allowed, rows)

    if failures:
        print("perf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
