#!/usr/bin/env python3
"""Perf regression gate over BENCH_*.json (JSONL) records.

Compares a freshly measured records file against the checked-in baseline and
fails (exit 1) when any gated benchmark's ns_per_op regressed by more than
the allowed fraction.  Records are matched on (suite, bench, impl); when a
file holds several records for one key (append-mode reruns), the LAST one
wins — the files are append-only logs.

Usage:
  tools/bench_gate.py fresh.json baseline.json \
      --bench full_server_load60 [--bench three_class ...] \
      [--max-regress 0.25]
"""

import argparse
import json
import sys


def load_records(path):
    records = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}: bad JSONL line: {err}\n  {line}")
            key = (rec.get("suite"), rec.get("bench"), rec.get("impl"))
            records[key] = rec  # last record wins
    return records


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh", help="just-measured records file")
    ap.add_argument("baseline", help="checked-in baseline records file")
    ap.add_argument(
        "--bench",
        action="append",
        default=[],
        help="bench name to gate (repeatable); default: all simulator "
        "full_server_* benches",
    )
    ap.add_argument(
        "--max-regress",
        type=float,
        default=0.25,
        help="allowed fractional ns_per_op increase (default 0.25)",
    )
    args = ap.parse_args()

    fresh = load_records(args.fresh)
    base = load_records(args.baseline)

    gated = args.bench or sorted(
        {k[1] for k in base if k[0] == "simulator" and k[1].startswith("full_server")}
    )
    if not gated:
        raise SystemExit("no benches to gate (baseline has no simulator records)")

    failures = []
    for bench in gated:
        fresh_rec = next(
            (r for k, r in fresh.items() if k[1] == bench and k[0] == "simulator"),
            None,
        )
        base_rec = next(
            (r for k, r in base.items() if k[1] == bench and k[0] == "simulator"),
            None,
        )
        if base_rec is None:
            print(f"[gate] {bench}: no baseline record — skipping")
            continue
        if fresh_rec is None:
            failures.append(f"{bench}: missing from fresh records")
            continue
        fresh_ns = float(fresh_rec["ns_per_op"])
        base_ns = float(base_rec["ns_per_op"])
        ratio = fresh_ns / base_ns
        verdict = "OK" if ratio <= 1.0 + args.max_regress else "REGRESSED"
        print(
            f"[gate] {bench}: {fresh_ns:.1f} ns vs baseline {base_ns:.1f} ns "
            f"({ratio - 1.0:+.1%}) {verdict}"
        )
        if verdict != "OK":
            failures.append(
                f"{bench}: {fresh_ns:.1f} ns vs {base_ns:.1f} ns baseline "
                f"(> {args.max_regress:.0%} regression)"
            )

    if failures:
        print("perf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
