// psdsim — command-line front end for the PSD simulator.
//
//   psdsim --classes 1,2,4 --load 0.7 --runs 32
//   psdsim --classes 1,2 --load 0.8 --dist bp:1.5,0.1,1000 --backend sfq
//   psdsim --classes 1,2 --load 0.6 --analytic       (closed forms only)
//   psdsim --help
//
// Prints per-class simulated and eq.-18 expected slowdowns, achieved ratios,
// and the windowed ratio percentiles — the numbers a capacity planner or a
// reviewer wants first.  For grids of scenarios, see psdsweep.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "psd.hpp"
#include "cli_util.hpp"

namespace {

using namespace psd;

const char* kUsage =
    R"(psdsim — proportional slowdown differentiation simulator (IPDPS'04)

options:
  --classes D1,D2[,...]   differentiation parameters, non-decreasing
                          (default 1,2)
  --load F                system utilization in (0,1)          (default 0.5)
  --shares S1,S2[,...]    per-class load shares, sum 1          (default equal)
  --dist SPEC             service-time distribution             (default bp:1.5,0.1,100)
                            bp:alpha,k,p     bounded Pareto
                            det:c            deterministic
                            exp:m            exponential
                            bexp:m,lo,hi     bounded exponential
                            lognormal:m,scv  lognormal
                            uniform:a,b      uniform
  --arrivals SPEC         arrival process                       (default poisson)
                            poisson | det | mmpp:burst[,sojourn[,duty]]
                            (mmpp: two-phase modulated Poisson; burst =
                             high-phase rate / mean rate, sojourn = mean
                             high-phase length in mean interarrivals,
                             duty = high-phase time fraction)
  --profile SPEC          nonstationary load modulation (times in tu):
                            ramp:t0,t1,f0,f1   piecewise-linear rate ramp
                            sin:period,amp     sinusoidal "diurnal" cycle
                            spike:t0,dur,mag   flash crowd (mag x rate)
  --admission SPEC        overload admission gate (lifts the load < 1 cap):
                            admit-all              count-only control
                            util[:thresh]          utilization gate
                            slowdown-budget[:B]    eq.-18 predicted-slowdown cap
                            delta-aware[:thresh]   proportional shedding
                            token-bucket[:thresh[,burst]]  per-class caps
  --converge-tol F        settle-band half-width for the re-convergence
                          metric                                (default 0.25)
  --check-converge TU     exit 1 unless, after the profile's settling point,
                          every class's windowed slowdown ratio re-enters
                          the band within TU time units in >= 75% of runs
  --backend NAME          dedicated | sfq | lottery | wtp | pad | hpd | strict
                          (default dedicated)
  --allocator NAME        psd | adaptive | equal | loadprop     (default psd)
  --nodes N               cluster nodes (1 = single server)     (default 1)
  --policy NAME           random | rr | lwl | sita | jsq[d]  (with --nodes > 1)
  --runs N                replications                          (default 32)
  --measure TU            measurement length in time units      (default 60000)
  --warmup TU             warmup in time units                  (default 10000)
  --seed N                master seed                           (default 42)
  --analytic              print closed-form results only (no simulation)
  --record-trace FILE     run ONE replication and write its arrival trace
                          (CSV: time,class,size in raw simulator time)
  --replay-trace FILE     drive ONE replication from a recorded trace
                          instead of synthetic generators (the same trace
                          also feeds psdserved --replay-trace)
  --trace-spans FILE      run ONE replication recording every request and
                          write its lifecycle spans as Chrome-trace JSON
                          (schema psd.rt.trace.v1 — same format psdserved
                          --trace-out emits, so a sim run and its rt replay
                          diff span-by-span; combines with --record-trace /
                          --replay-trace)
  --summary-json FILE     also write the results as one machine-readable
                          JSON object (schema psd.sim.summary.v1) — tooling
                          parity with psdsweep JSONL without a campaign
  --csv                   CSV instead of aligned table
  --help                  this text
)";

[[noreturn]] void usage(int code) {
  std::cout << kUsage;
  std::exit(code);
}

}  // namespace

namespace {

/// Config fields every summary variant shares.
void summary_header(JsonObject& o, const char* mode,
                    const ScenarioConfig& cfg, const std::string& dist_name,
                    const std::vector<double>& lambdas) {
  o.field("schema", "psd.sim.summary.v1")
      .field("mode", mode)
      .field("classes", cfg.delta.size())
      .raw("delta", json_array(cfg.delta))
      .field("load", cfg.load)
      .raw("lambda", json_array(lambdas))
      .field("dist", dist_name)
      .field("backend", backend_name(cfg.backend))
      .field("allocator", allocator_name(cfg.allocator))
      .field("nodes", cfg.cluster_nodes)
      .field("measure_tu", cfg.measure_tu)
      .field("warmup_tu", cfg.warmup_tu)
      .field("seed", cfg.seed);
  if (cfg.profile.active()) o.field("profile", cfg.profile.name());
  if (cfg.admission.active()) o.field("admission", cfg.admission.name());
}

bool write_summary(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "error: cannot write '" << path << "'\n";
    return false;
  }
  out << body << "\n";
  std::cout << "wrote summary to " << path << "\n";
  return true;
}

/// One-replication summary (the record/replay paths).
std::string single_run_summary(const ScenarioConfig& cfg, const RunResult& r,
                               const std::vector<double>& expected,
                               const std::string& dist_name,
                               const std::vector<double>& lambdas) {
  JsonObject o;
  summary_header(o, "single", cfg, dist_name, lambdas);
  const double s0 = r.cls[0].mean_slowdown;
  std::string cls = "[";
  for (std::size_t i = 0; i < cfg.delta.size(); ++i) {
    JsonObject c;
    c.field("delta", cfg.delta[i])
        .field("mean_slowdown", r.cls[i].mean_slowdown)
        .field("mean_delay", r.cls[i].mean_delay)
        .field("expected", expected[i])
        .field("ratio", s0 > 0.0 ? r.cls[i].mean_slowdown / s0 : kNaN)
        .field("completed", r.cls[i].completed);
    if (i > 0) cls += ',';
    cls += c.str();
  }
  cls += ']';
  o.raw("cls", cls)
      .field("system_slowdown", r.system_slowdown)
      .field("submitted", r.submitted)
      .field("reallocations", r.reallocations);
  if (!r.settle_tu.empty()) o.raw("settle_tu", json_array(r.settle_tu));
  if (cfg.admission.active()) {
    o.raw("shed", json_array(std::vector<double>(r.shed.begin(), r.shed.end())))
        .field("goodput_tu", r.goodput_tu);
  }
  return o.str();
}

/// Cross-replication summary (the default path).
std::string replicated_summary(const ScenarioConfig& cfg, std::size_t runs,
                               const ReplicatedResult& r,
                               const std::string& dist_name,
                               const std::vector<double>& lambdas) {
  JsonObject o;
  summary_header(o, "replications", cfg, dist_name, lambdas);
  o.field("runs", runs);
  std::string cls = "[";
  for (std::size_t i = 0; i < cfg.delta.size(); ++i) {
    JsonObject c;
    c.field("delta", cfg.delta[i])
        .field("mean_slowdown", r.slowdown[i].mean)
        .field("ci95", r.slowdown[i].half_width)
        .field("expected", r.expected[i])
        .field("mean_ratio", r.mean_ratio[i]);
    if (i > 0) cls += ',';
    cls += c.str();
  }
  cls += ']';
  o.raw("cls", cls);
  if (!r.ratio.empty()) {
    std::string rp = "[";
    for (std::size_t j = 0; j < r.ratio.size(); ++j) {
      JsonObject c;
      c.field("p5", r.ratio[j].p5)
          .field("p50", r.ratio[j].p50)
          .field("p95", r.ratio[j].p95)
          .field("mean", r.ratio[j].mean)
          .field("windows", r.ratio[j].windows);
      if (j > 0) rp += ',';
      rp += c.str();
    }
    rp += ']';
    o.raw("ratio_percentiles", rp);
  }
  if (!r.settle_mean_tu.empty()) {
    JsonObject s;
    s.raw("mean_tu", json_array(r.settle_mean_tu))
        .raw("rate", json_array(r.settle_rate))
        .raw("p75_tu", json_array(r.settle_p75_tu));
    o.raw("settle", s.str());
  }
  o.field("system_slowdown", r.system_slowdown)
      .field("expected_system", r.expected_system)
      .field("completed_total", r.completed_total);
  if (cfg.admission.active()) {
    o.field("shed_total", r.shed_total)
        .raw("shed_rate", json_array(r.shed_rate))
        .field("goodput_tu", r.goodput_tu)
        .field("survivor_ratio_err", r.survivor_ratio_err);
  }
  return o.str();
}

/// Per-class table for one replication (the record/replay paths run exactly
/// one, so there are no cross-run confidence intervals to show).
void print_single_run(const ScenarioConfig& cfg, const RunResult& r,
                      const std::vector<double>& expected, bool csv) {
  Table t({"class", "delta", "S measured", "S expected", "ratio vs class 1",
           "completed"});
  const double s0 = r.cls[0].mean_slowdown;
  for (std::size_t i = 0; i < cfg.delta.size(); ++i) {
    t.add_row({std::to_string(i + 1), Table::fmt(cfg.delta[i], 2),
               Table::fmt(r.cls[i].mean_slowdown, 3),
               Table::fmt(expected[i], 3),
               Table::fmt(s0 > 0.0 ? r.cls[i].mean_slowdown / s0 : kNaN, 3),
               std::to_string(r.cls[i].completed)});
  }
  csv ? t.print_csv(std::cout) : t.print(std::cout);
  std::cout << "\nsystem slowdown: " << Table::fmt(r.system_slowdown, 3)
            << "   submitted=" << r.submitted
            << " reallocations=" << r.reallocations << "\n";
  for (std::size_t j = 0; j < r.settle_tu.size(); ++j) {
    std::cout << "class " << j + 2 << " ratio settle after "
              << cfg.profile.name() << ": " << Table::fmt(r.settle_tu[j], 0)
              << " tu\n";
  }
  if (cfg.admission.active() && !r.shed.empty()) {
    std::uint64_t shed_total = 0;
    for (const auto v : r.shed) shed_total += v;
    std::cout << "admission " << cfg.admission.name()
              << ": shed=" << shed_total
              << "  goodput=" << Table::fmt(r.goodput_tu, 4)
              << " completions/tu\n";
  }
}

/// Convert one replication's recorded per-request completions into the same
/// psd.rt.trace.v1 span JSON that psdserved --trace-out emits, so a sim run
/// and its rt replay of the same trace diff span-by-span.  The simulator has
/// no ingress ring or admission gate in this path, so every span is
/// "admitted" on shard 0 with t_ingress = t_admit = t_pop = arrival and
/// tick 0.  Trace ids use the rt packing (shard 0, shed 0, 1-based per-class
/// completion ordinal — identical to the rt accepted ordinal because the
/// dedicated-rate backend completes within-class FIFO), and every record is
/// emitted: diff against an rt run with --trace-sample 1.
bool write_span_trace(const std::string& path, const ScenarioConfig& cfg,
                      const std::vector<Request>& records) {
  try {
    obs::TraceWriter writer(path);
    std::vector<std::uint64_t> ordinal(cfg.num_classes(), 0);
    for (const Request& req : records) {
      obs::Span s;
      s.trace_id = (static_cast<std::uint64_t>(req.cls & 0xff) << 48) |
                   (++ordinal[req.cls] & ((1ull << 47) - 1));
      s.cls = static_cast<std::uint32_t>(req.cls);
      s.shard = 0;
      s.verdict = obs::kSpanAdmitted;
      s.tick_seq = 0;
      s.t_ingress = req.arrival;
      s.t_admit = req.arrival;
      s.t_pop = req.arrival;
      s.t_start = req.service_start;
      s.t_complete = req.departure;
      s.size = req.size;
      s.slowdown = req.slowdown();
      writer.write_span(s);
    }
    writer.close();
    std::cout << "wrote " << records.size() << " spans to " << path << "\n";
    return true;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioConfig cfg;
  std::size_t runs = 32;
  bool analytic_only = false;
  bool csv = false;
  std::string record_path;
  std::string replay_path;
  std::string span_path;
  std::string summary_path;
  double check_converge_tu = -1.0;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw cli::CliError(arg + " needs a value (see --help)");
        }
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") usage(0);
      else if (arg == "--classes")
        cfg.delta = cli::parse_list(arg, value(), "--classes 1,2,4");
      else if (arg == "--load")
        cfg.load = cli::parse_double(arg, value(), "--load 0.7");
      else if (arg == "--shares")
        cfg.load_share = cli::parse_list(arg, value(), "--shares 0.7,0.3");
      else if (arg == "--dist") cfg.size_dist = cli::parse_dist(arg, value());
      else if (arg == "--arrivals") {
        const ArrivalSpec a = cli::parse_arrival_spec(arg, value());
        cfg.arrivals = a.kind;
        cfg.burstiness = a.burstiness;
        cfg.mmpp_sojourn = a.sojourn;
        cfg.mmpp_duty = a.duty;
      }
      else if (arg == "--profile") cfg.profile = cli::parse_profile(arg, value());
      else if (arg == "--admission")
        cfg.admission = cli::parse_admission(arg, value());
      else if (arg == "--converge-tol")
        cfg.converge_tol =
            cli::parse_double(arg, value(), "--converge-tol 0.25");
      else if (arg == "--check-converge")
        check_converge_tu =
            cli::parse_double(arg, value(), "--check-converge 8000");
      else if (arg == "--backend") cfg.backend = cli::parse_backend(arg, value());
      else if (arg == "--allocator")
        cfg.allocator = cli::parse_allocator(arg, value());
      else if (arg == "--nodes")
        cfg.cluster_nodes = static_cast<std::size_t>(
            cli::parse_uint(arg, value(), "--nodes 4"));
      else if (arg == "--policy") {
        const AssignmentSpec as = cli::parse_assignment(arg, value());
        cfg.cluster_policy = as.policy;
        cfg.cluster_jsq_d = as.d;
      }
      else if (arg == "--runs")
        runs = static_cast<std::size_t>(
            cli::parse_uint(arg, value(), "--runs 32"));
      else if (arg == "--measure")
        cfg.measure_tu = cli::parse_double(arg, value(), "--measure 60000");
      else if (arg == "--warmup")
        cfg.warmup_tu = cli::parse_double(arg, value(), "--warmup 10000");
      else if (arg == "--seed")
        cfg.seed = cli::parse_uint(arg, value(), "--seed 42");
      else if (arg == "--analytic") analytic_only = true;
      else if (arg == "--record-trace") record_path = value();
      else if (arg == "--replay-trace") replay_path = value();
      else if (arg == "--trace-spans") span_path = value();
      else if (arg == "--summary-json") summary_path = value();
      else if (arg == "--csv") csv = true;
      else {
        std::cerr << "error: unknown option '" << arg << "'\n";
        usage(2);
      }
    }
  } catch (const cli::CliError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  try {
    cfg.validate();
    const SamplerVariant dist = make_sampler(cfg.size_dist);
    const auto lambdas = cfg.true_lambdas();

    std::cout << "service-time distribution: " << dist.name()
              << "  (E[X]=" << Table::fmt(dist.mean(), 4)
              << ", E[X^2]=" << Table::fmt(dist.second_moment(), 4)
              << ", E[1/X]=" << Table::fmt(dist.mean_inverse(), 4) << ")\n";

    // Eq. 17/18 closed forms exist only under capacity; a deliberately
    // overloaded run (admission active, load >= 1) has no feasible
    // allocation to predict, so the expected columns go NaN.
    const bool feasible = cfg.load < 1.0;
    std::vector<double> expected(cfg.delta.size(), kNaN);
    if (feasible) {
      expected = expected_psd_slowdowns(lambdas, cfg.delta, dist);
    }

    if (analytic_only) {
      if (!feasible) {
        std::cerr << "error: --analytic needs load < 1 (eq. 17/18 are "
                     "undefined beyond capacity)\n";
        return 2;
      }
      PsdInput in;
      in.lambda = lambdas;
      in.delta = cfg.delta;
      in.mean_size = dist.mean();
      in.min_residual_share = 0.0;
      const auto alloc = allocate_psd_rates(in);
      Table t({"class", "delta", "lambda", "rate (eq.17)", "E[S] (eq.18)"});
      for (std::size_t i = 0; i < cfg.delta.size(); ++i) {
        t.add_row(std::vector<double>{static_cast<double>(i + 1),
                                      cfg.delta[i], lambdas[i], alloc.rate[i],
                                      expected[i]},
                  4);
      }
      csv ? t.print_csv(std::cout) : t.print(std::cout);
      return 0;
    }

    if (!record_path.empty() && !replay_path.empty()) {
      std::cerr << "error: --record-trace and --replay-trace are mutually "
                   "exclusive\n";
      return 2;
    }
    if (!span_path.empty()) {
      // Span emission needs every request record from the whole run, not
      // the default Figs. 7-8 snapshot window.
      cfg.record_requests = true;
      cfg.record_from_tu = 0.0;
      cfg.record_to_tu = kInf;
    }
    if (!span_path.empty() && record_path.empty() && replay_path.empty()) {
      std::cout << "tracing one replication (" << cfg.measure_tu
                << " tu, warmup " << cfg.warmup_tu << " tu)...\n\n";
      Trace trace;  // Arrival trace is a by-product here; discarded.
      const RunResult r = run_scenario_recorded(cfg, trace);
      print_single_run(cfg, r, expected, csv);
      if (!write_span_trace(span_path, cfg, r.records)) return 1;
      if (!summary_path.empty() &&
          !write_summary(summary_path, single_run_summary(
                             cfg, r, expected, dist.name(), lambdas))) {
        return 1;
      }
      return 0;
    }
    if (!record_path.empty()) {
      std::cout << "recording one replication (" << cfg.measure_tu
                << " tu, warmup " << cfg.warmup_tu << " tu)...\n\n";
      Trace trace;
      const RunResult r = run_scenario_recorded(cfg, trace);
      std::ofstream out(record_path);
      if (!out) {
        std::cerr << "error: cannot write '" << record_path << "'\n";
        return 1;
      }
      write_trace(out, trace);
      print_single_run(cfg, r, expected, csv);
      std::cout << "wrote " << trace.size() << " arrivals to " << record_path
                << "\n";
      if (!span_path.empty() && !write_span_trace(span_path, cfg, r.records)) {
        return 1;
      }
      if (!summary_path.empty() &&
          !write_summary(summary_path, single_run_summary(
                             cfg, r, expected, dist.name(), lambdas))) {
        return 1;
      }
      return 0;
    }
    if (!replay_path.empty()) {
      std::ifstream in(replay_path);
      if (!in) {
        std::cerr << "error: cannot open trace '" << replay_path << "'\n";
        return 1;
      }
      const Trace trace = read_trace(in);
      std::cout << "replaying " << trace.size() << " arrivals from "
                << replay_path << " (" << cfg.measure_tu << " tu, warmup "
                << cfg.warmup_tu << " tu)...\n\n";
      const RunResult r = run_scenario_replayed(cfg, trace);
      print_single_run(cfg, r, expected, csv);
      if (!span_path.empty() && !write_span_trace(span_path, cfg, r.records)) {
        return 1;
      }
      if (!summary_path.empty() &&
          !write_summary(summary_path, single_run_summary(
                             cfg, r, expected, dist.name(), lambdas))) {
        return 1;
      }
      return 0;
    }

    std::cout << "simulating " << runs << " replications ("
              << cfg.measure_tu << " tu each, warmup " << cfg.warmup_tu
              << " tu";
    if (cfg.cluster_nodes > 1) {
      std::cout << ", " << cfg.cluster_nodes << " nodes, "
                << AssignmentSpec(cfg.cluster_policy, cfg.cluster_jsq_d)
                       .name();
    }
    if (cfg.arrivals == ArrivalKind::kBursty) {
      std::cout << ", mmpp burst=" << cfg.burstiness;
    }
    if (cfg.profile.active()) {
      std::cout << ", profile " << cfg.profile.name();
    }
    if (cfg.admission.active()) {
      std::cout << ", admission " << cfg.admission.name();
    }
    std::cout << ")...\n\n";
    const auto r = run_replications(cfg, runs);

    Table t({"class", "delta", "S simulated", "+-95%", "S expected",
             "ratio vs class 1"});
    for (std::size_t i = 0; i < cfg.delta.size(); ++i) {
      t.add_row({std::to_string(i + 1), Table::fmt(cfg.delta[i], 2),
                 Table::fmt(r.slowdown[i].mean, 3),
                 Table::fmt(r.slowdown[i].half_width, 3),
                 Table::fmt(r.expected[i], 3),
                 Table::fmt(r.mean_ratio[i], 3)});
    }
    csv ? t.print_csv(std::cout) : t.print(std::cout);

    if (!r.ratio.empty()) {
      std::cout << "\nwindowed ratio percentiles (vs class 1):\n";
      Table rt({"class", "p5", "p50", "p95"});
      for (std::size_t j = 0; j < r.ratio.size(); ++j) {
        rt.add_row({std::to_string(j + 2), Table::fmt(r.ratio[j].p5, 2),
                    Table::fmt(r.ratio[j].p50, 2),
                    Table::fmt(r.ratio[j].p95, 2)});
      }
      csv ? rt.print_csv(std::cout) : rt.print(std::cout);
    }
    // Transient response: how fast the windowed ratios re-entered the band
    // after the profile's settling point (the adaptive-vs-static statistic
    // for nonstationary scenarios).
    if (!r.settle_mean_tu.empty()) {
      std::cout << "\nratio re-convergence after " << cfg.profile.name()
                << " settles at t=" << Table::fmt(cfg.profile.step_time(), 0)
                << " tu (band +-"
                << Table::fmt(cfg.converge_tol * 100.0, 0) << "%):\n";
      Table ct({"class", "settled runs", "mean settle tu", "p75 settle tu"});
      for (std::size_t j = 0; j < r.settle_mean_tu.size(); ++j) {
        ct.add_row({std::to_string(j + 2),
                    Table::fmt(r.settle_rate[j] * 100.0, 0) + "%",
                    Table::fmt(r.settle_mean_tu[j], 0),
                    Table::fmt(r.settle_p75_tu[j], 0)});
      }
      csv ? ct.print_csv(std::cout) : ct.print(std::cout);
    }

    std::cout << "\nsystem slowdown: simulated="
              << Table::fmt(r.system_slowdown, 3)
              << " expected=" << Table::fmt(r.expected_system, 3)
              << "   completions=" << r.completed_total << "\n";

    // Overload survival: what the gate shed, what got through, and whether
    // the admitted classes still held their slowdown ratios.
    if (cfg.admission.active()) {
      std::cout << "\noverload survival (" << cfg.admission.name() << "):\n";
      Table at({"class", "shed rate"});
      for (std::size_t j = 0; j < r.shed_rate.size(); ++j) {
        at.add_row({std::to_string(j + 1),
                    Table::fmt(r.shed_rate[j] * 100.0, 1) + "%"});
      }
      csv ? at.print_csv(std::cout) : at.print(std::cout);
      std::cout << "goodput=" << Table::fmt(r.goodput_tu, 4)
                << " completions/tu   shed_total=" << r.shed_total
                << "   survivor ratio error="
                << Table::fmt(r.survivor_ratio_err * 100.0, 1) << "%\n";
    }

    if (!summary_path.empty() &&
        !write_summary(summary_path,
                       replicated_summary(cfg, runs, r, dist.name(),
                                          lambdas))) {
      return 1;
    }

    if (check_converge_tu >= 0.0) {
      if (r.settle_mean_tu.empty()) {
        std::cerr << "error: --check-converge needs a --profile with a "
                     "settling point (ramp or spike) and >= 2 classes\n";
        return 2;
      }
      // The documented contract: 75% of runs re-entered the band within the
      // bound, i.e. the p75 settle time (never-settled = infinite) is under
      // it.  A mean-based check would let fast runs mask a slow tail.
      for (std::size_t j = 0; j < r.settle_p75_tu.size(); ++j) {
        if (!(r.settle_p75_tu[j] <= check_converge_tu)) {
          std::cerr << "CONVERGENCE CHECK FAILED: class " << j + 2
                    << " settled in " << Table::fmt(r.settle_rate[j] * 100, 0)
                    << "% of runs, p75 "
                    << Table::fmt(r.settle_p75_tu[j], 0) << " tu (need >=75%"
                    << " within " << check_converge_tu << " tu)\n";
          return 1;
        }
      }
      std::cout << "convergence check passed (<= " << check_converge_tu
                << " tu in >= 75% of runs)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
