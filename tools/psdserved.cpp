// psdserved — real-time serving front end for the PSD stack.
//
//   psdserved --classes 1,2 --load 0.6 --duration 3
//   psdserved --classes 1,2,4 --load 60 --shards 2 --loadgens 2 --pin
//   psdserved --replay-trace arrivals.trace --classes 1,2
//   psdserved --check-ratio-tol 0.15 --bench-out BENCH_rt.json   (CI smoke)
//
// Unlike psdsim (discrete-event, simulated time), this drives src/rt: real
// load-generator / shard / controller threads against the wall clock.  Per
// class it prints completions, measured mean slowdown, achieved vs target
// slowdown ratio, and the ingress transit latency; --check-ratio-tol turns
// the run into a pass/fail differentiation smoke test.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "psd.hpp"
#include "../bench/json_bench.hpp"
#include "cli_util.hpp"
#include "rt/handle.hpp"
#include "rt_flags.hpp"

namespace {

using namespace psd;

const char* kUsage =
    R"(psdserved — wall-clock PSD serving runtime (src/rt)

options:
  --classes D1,D2[,...]   differentiation parameters, non-decreasing
                          (default 1,2)
  --load F                per-shard utilization: fraction or percent
                          (default 0.6)
  --shares S1,S2[,...]    per-class load shares, sum 1       (default equal)
  --dist SPEC             service-time distribution  (default bp:1.5,0.1,100)
  --arrivals SPEC         poisson | det | mmpp:burst[,sojourn[,duty]]
                          (default poisson)
  --profile SPEC          nonstationary load modulation, times in SECONDS:
                          ramp:t0,t1,f0,f1 | sin:period,amp | spike:t0,dur,mag
                          (the loadgen threads thin their arrival streams to
                           follow it on the wall clock)
  --converge-tol F        settle-band half-width for the re-convergence
                          metric                             (default 0.25)
  --admission SPEC        ring-pop admission gate (lifts the load < 100% cap):
                          admit-all | util[:thresh] | slowdown-budget[:B] |
                          delta-aware[:thresh] | token-bucket[:thresh[,burst]]
  --shards N              worker shards (threads)            (default 1)
  --loadgens N            load-generator threads             (default 1)
  --duration SEC          total run length                   (default 3)
  --warmup SEC            excluded from metrics              (default 0.5)
  --mean-service-us U     mean request service time, usec    (default 100)
  --period-ms MS          controller reallocation period     (default 50)
  --allocator NAME        psd | adaptive | equal | loadprop | none
                          (default adaptive)
  --burst SEC             token-bucket burst allowance       (default 0.1)
  --seed N                master seed                        (default fixed)
  --pin                   pin threads to cores (best effort)
  --replay-trace FILE     drive arrivals from a recorded trace (see psdsim
                          --record-trace) instead of synthetic generators
  --trace-scale F         seconds per recorded time unit
                          (default mean-service-us / E[X]: replay a simulator
                          trace at the runtime's native speed)
  --check-ratio-tol F     exit 1 unless max achieved-vs-target slowdown
                          ratio error <= F
  --check-goodput FRAC    exit 1 unless goodput >= FRAC x aggregate capacity
                          (shards / mean-service; needs --admission)
  --check-shed-skew TOL   exit 1 unless every class's shed rate is within
                          TOL of the overall shed rate (needs --admission)
  --bench-out FILE        append a JSONL perf record (suite "rt")

observability (src/obs; all imply --telemetry):
  --telemetry             collect live per-shard histograms + controller
                          decision trace; report gains slowdown percentiles
  --stats-out FILE        stream timestamped stats JSONL while running
                          (schema psd.rt.stats.v1, see src/obs/README.md)
  --stats-interval SEC    sampling period of the stream     (default 0.5)
  --metrics-port N        serve Prometheus text on GET
                          http://127.0.0.1:N/metrics while running
  --obs-profile           arm rdtsc self-profiling timers (drain, ring ops,
                          allocator tick) aggregated into the stream
  --trace-out FILE        write sampled request-lifecycle spans as Chrome
                          trace-event JSON (schema psd.rt.trace.v1; open in
                          chrome://tracing or Perfetto)
  --trace-sample N        trace every Nth request per class, power of two
                          (default 64; 1 = every request)
  --slo RULES             SLO watchdog rules, e.g. "ratio_err>0.5,goodput<1e4"
                          (metrics: ratio_err goodput shed_rate settle; ops
                          > <; evaluated once per stats interval, armed
                          after warmup); breach dumps a flight-recorder
                          bundle (schema psd.rt.flight.v1)
  --slo-dump PREFIX       flight bundle path prefix (default psd-flight;
                          files are PREFIX-t<time>.json)
  --help                  this text
)";

[[noreturn]] void usage(int code) {
  std::cout << kUsage;
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  rt::RtConfig cfg;
  std::string replay_path;
  std::string bench_out;
  double trace_scale = 0.0;  // 0 = derive from mean_service / E[X]
  double check_tol = -1.0;
  double check_goodput = -1.0;
  double check_shed_skew = -1.0;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw cli::CliError(arg + " needs a value (see --help)");
        }
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") usage(0);
      else if (cli::parse_rt_flag(arg, value, cfg)) {
        // Shared RtConfig grammar (tools/rt_flags.hpp) — also psdcluster's.
      }
      else if (arg == "--replay-trace") replay_path = value();
      else if (arg == "--trace-scale")
        trace_scale = cli::parse_double(arg, value(), "--trace-scale 1e-4");
      else if (arg == "--check-ratio-tol")
        check_tol = cli::parse_double(arg, value(), "--check-ratio-tol 0.15");
      else if (arg == "--check-goodput")
        check_goodput =
            cli::parse_double(arg, value(), "--check-goodput 0.9");
      else if (arg == "--check-shed-skew")
        check_shed_skew =
            cli::parse_double(arg, value(), "--check-shed-skew 0.1");
      else if (arg == "--bench-out") bench_out = value();
      else if (arg == "--stats-out") {
        cfg.obs.stats_path = value();
        cfg.obs.enabled = true;
      } else if (arg == "--trace-out") {
        cfg.obs.trace_path = value();
        cfg.obs.enabled = true;
      } else {
        std::cerr << "error: unknown option '" << arg << "'\n";
        usage(2);
      }
    }
  } catch (const cli::CliError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  try {
    cfg.validate();
    const SamplerVariant dist = make_sampler(cfg.size_dist);

    std::unique_ptr<rt::Runtime> runtime;
    if (!replay_path.empty()) {
      std::ifstream in(replay_path);
      if (!in) {
        std::cerr << "error: cannot open trace '" << replay_path << "'\n";
        return 2;
      }
      Trace trace = read_trace(in);
      const double scale = trace_scale > 0.0
                               ? trace_scale
                               : cfg.mean_service_seconds / dist.mean();
      // Load generation stops at --duration; a trace cut short there would
      // silently compare different arrival sets across the sim and rt
      // stacks, so stretch the run to cover every recorded entry.
      if (!trace.empty()) {
        const double span = (trace.back().time - trace.front().time) * scale;
        if (cfg.duration < span + 0.1) {
          cfg.duration = span + 0.1;
          std::cout << "note: extending --duration to " << cfg.duration
                    << "s to cover the full trace\n";
        }
      }
      std::cout << "replaying " << trace.size() << " arrivals from "
                << replay_path << " (scale " << scale << " s/unit)\n";
      runtime = std::make_unique<rt::Runtime>(cfg, rt::SteadyClock(),
                                              std::move(trace), scale);
    } else {
      runtime = std::make_unique<rt::Runtime>(cfg, rt::SteadyClock());
    }

    std::cout << "serving " << cfg.delta.size() << " classes at load "
              << cfg.load << " for " << cfg.duration << "s (warmup "
              << cfg.warmup << "s): " << cfg.shards << " shard(s), "
              << cfg.loadgens << " loadgen(s), allocator "
              << runtime->controller().allocator_name() << ", E[X]="
              << Table::fmt(dist.mean(), 4) << " in "
              << cfg.mean_service_seconds * 1e6 << "us";
    if (cfg.admission.active()) {
      std::cout << ", admission " << cfg.admission.name();
    }
    std::cout << "...\n\n";

    // psdserved is the 1-node special case of the cluster tier: the whole
    // serving session runs through the same RuntimeHandle the cluster
    // dispatcher drives its nodes through.
    rt::RuntimeHandle handle(*runtime);
    const rt::RtReport r = handle.run();

    const bool gated = cfg.admission.active();
    std::vector<std::string> cols = {"class", "delta", "completed", "dropped",
                                     "S measured", "ratio", "ratio p50",
                                     "target", "err%", "ingress us"};
    if (gated) {
      cols.insert(cols.begin() + 4, {"shed", "shed%"});
    }
    if (cfg.obs.enabled) {
      cols.insert(cols.end(), {"S p50", "S p95", "S p99"});
    }
    Table t(cols);
    for (std::size_t c = 0; c < r.cls.size(); ++c) {
      const auto& cl = r.cls[c];
      const double err =
          c > 0 ? (cl.window_ratio_p50 / cl.target_ratio - 1.0) * 100.0 : 0.0;
      std::vector<std::string> row = {
          std::to_string(c + 1), Table::fmt(cl.delta, 2),
          std::to_string(cl.completed), std::to_string(cl.dropped),
          Table::fmt(cl.mean_slowdown, 3),
          Table::fmt(cl.achieved_ratio, 3),
          c > 0 ? Table::fmt(cl.window_ratio_p50, 3) : "1.000",
          Table::fmt(cl.target_ratio, 2),
          c > 0 ? Table::fmt(err, 1) : "-",
          Table::fmt(cl.mean_ingress_wait * 1e6, 1)};
      if (gated) {
        row.insert(row.begin() + 4,
                   {std::to_string(cl.shed),
                    Table::fmt(cl.shed_rate * 100.0, 1)});
      }
      if (cfg.obs.enabled) {
        row.insert(row.end(), {Table::fmt(cl.slowdown_p50, 3),
                               Table::fmt(cl.slowdown_p95, 3),
                               Table::fmt(cl.slowdown_p99, 3)});
      }
      t.add_row(row);
    }
    t.print(std::cout);

    std::cout << "\nthroughput: " << Table::fmt(r.requests_per_sec, 0)
              << " req/s  (produced " << r.produced << ", completed "
              << r.completed_all << ", dropped " << r.dropped
              << ", unfinished " << r.outstanding << ")\n";
    std::cout << "controller: " << r.controller_ticks << " ticks, "
              << r.reallocations << " reallocations; " << r.drains
              << " shard drains over " << Table::fmt(r.elapsed, 2) << "s\n";
    if (runtime->exporter() != nullptr) {
      std::cout << "telemetry: " << runtime->exporter()->samples()
                << " stats samples";
      if (!cfg.obs.stats_path.empty()) {
        std::cout << " -> " << cfg.obs.stats_path;
      }
      if (cfg.obs.metrics_port > 0) {
        std::cout << " (served /metrics on port " << cfg.obs.metrics_port
                  << ")";
      }
      std::cout << "\n";
      if (!cfg.obs.trace_path.empty()) {
        std::uint64_t span_drops = 0;
        for (std::size_t i = 0; i < runtime->num_shards(); ++i) {
          span_drops += runtime->shard(i).spans_dropped();
        }
        std::cout << "tracing: " << runtime->exporter()->trace_events()
                  << " events (1-in-" << cfg.obs.trace_sample_period
                  << " per class, " << span_drops
                  << " ring drops) -> " << cfg.obs.trace_path << "\n";
      }
      if (runtime->watchdog() != nullptr) {
        const obs::Watchdog& wd = *runtime->watchdog();
        std::cout << "watchdog [" << cfg.obs.slo_rules << "]: "
                  << wd.total_breaches() << " rule breaches, " << wd.dumps()
                  << " flight dumps";
        if (wd.dumps() > 0) {
          std::cout << " (last: " << wd.last_flight_path() << ")";
        }
        std::cout << "\n";
      }
    }
    std::cout << "max ratio error: " << Table::fmt(r.max_ratio_error * 100, 1)
              << "% (of means), "
              << Table::fmt(r.max_window_ratio_error * 100, 1)
              << "% (windowed median)\n";
    if (gated) {
      const double capacity_rps =
          static_cast<double>(cfg.shards) / cfg.mean_service_seconds;
      std::cout << "admission " << cfg.admission.name() << ": shed "
                << r.shed_total << " (ring drops " << r.dropped
                << "), goodput " << Table::fmt(r.goodput, 0) << " req/s of "
                << Table::fmt(capacity_rps, 0) << " capacity ("
                << Table::fmt(r.goodput / capacity_rps * 100.0, 1)
                << "%), survivor ratio error "
                << Table::fmt(r.survivor_window_ratio_error * 100.0, 1)
                << "%\n";
    }
    if (cfg.profile.active()) {
      std::cout << "profile " << cfg.profile.name() << ": ";
      if (std::isfinite(cfg.profile.step_time())) {
        std::cout << "max ratio settle after t="
                  << Table::fmt(cfg.profile.step_time(), 2) << "s: "
                  << Table::fmt(r.max_settle_seconds, 2) << "s (band +-"
                  << Table::fmt(cfg.converge_tol * 100, 0) << "%)\n";
      } else {
        std::cout << "periodic modulation (no settling point)\n";
      }
    }

    if (!bench_out.empty()) {
      // json_num: a single-class run has no ratio to report (NaN) and a
      // zero-completion run no ns_per_op (inf) — both must render as null
      // or the record line poisons the whole file for bench_gate.py.
      using bench::json_num;
      std::ostringstream os;
      os << "{\"suite\":\"rt\",\"bench\":\"serve_load"
         << static_cast<int>(cfg.load * 100 + 0.5)
         << "\",\"impl\":\"psdserved\",\"shards\":" << cfg.shards
         << ",\"classes\":" << cfg.delta.size()
         << ",\"ns_per_op\":" << json_num(1e9 / r.requests_per_sec)
         << ",\"ops_per_sec\":" << json_num(r.requests_per_sec)
         << ",\"ratio_error\":" << json_num(r.max_ratio_error)
         << ",\"window_ratio_error\":" << json_num(r.max_window_ratio_error)
         << ",\"iters\":" << r.completed_all << "}\n";
      std::ofstream out(bench_out, std::ios::app);
      out << os.str();
      std::cout << os.str();
    }

    if (check_tol >= 0.0) {
      // Gate on the windowed median: robust to the single heavy-tail giants
      // that can swing a short run's cumulative class mean arbitrarily.
      if (!(r.max_window_ratio_error <= check_tol)) {
        std::cerr << "RATIO CHECK FAILED: max windowed-median error "
                  << r.max_window_ratio_error * 100 << "% > tolerance "
                  << check_tol * 100 << "%\n";
        return 1;
      }
      std::cout << "ratio check passed (<= " << check_tol * 100 << "%)\n";
    }

    if (check_goodput >= 0.0) {
      if (!cfg.admission.active()) {
        std::cerr << "error: --check-goodput needs --admission\n";
        return 2;
      }
      const double capacity_rps =
          static_cast<double>(cfg.shards) / cfg.mean_service_seconds;
      const double need = check_goodput * capacity_rps;
      if (!(r.goodput >= need)) {
        std::cerr << "GOODPUT CHECK FAILED: " << Table::fmt(r.goodput, 0)
                  << " req/s < " << Table::fmt(need, 0) << " ("
                  << check_goodput << " x " << Table::fmt(capacity_rps, 0)
                  << " capacity)\n";
        return 1;
      }
      std::cout << "goodput check passed (>= " << check_goodput
                << " x capacity)\n";
    }
    if (check_shed_skew >= 0.0) {
      if (!cfg.admission.active()) {
        std::cerr << "error: --check-shed-skew needs --admission\n";
        return 2;
      }
      // Skew = worst per-class deviation from the mean per-class shed rate;
      // a fair-by-construction policy (util / admit-all) should show ~0.
      double rate_sum = 0.0;
      std::size_t rate_n = 0;
      for (const auto& cl : r.cls) {
        if (std::isfinite(cl.shed_rate)) {
          rate_sum += cl.shed_rate;
          ++rate_n;
        }
      }
      const double overall = rate_n > 0 ? rate_sum / rate_n : 0.0;
      double skew = 0.0;
      for (const auto& cl : r.cls) {
        if (std::isfinite(cl.shed_rate)) {
          skew = std::max(skew, std::fabs(cl.shed_rate - overall));
        }
      }
      if (!(skew <= check_shed_skew)) {
        std::cerr << "SHED SKEW CHECK FAILED: max per-class deviation "
                  << Table::fmt(skew * 100, 1) << "% > tolerance "
                  << Table::fmt(check_shed_skew * 100, 1) << "%\n";
        return 1;
      }
      std::cout << "shed skew check passed (<= "
                << Table::fmt(check_shed_skew * 100, 1) << "%)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
