// psdsweep — declarative campaign driver over the sweep engine.
//
//   psdsweep --loads 30,60,90 --backends dedicated,sfq,lottery \
//            --runs 8 --out campaign.jsonl
//   psdsweep --spec campaigns/fig05_fig09.spec
//   psdsweep --spec campaigns/abl01.spec --runs 4 --out abl01.jsonl
//
// Expands the grid (axes cross; loads vary fastest), executes scenarios x
// replications on one shared work-stealing pool, and streams one JSONL
// record per grid point.  Re-running with the same --out skips points whose
// key (config content hash) is already present for the same master seed.
// Fixed seed => byte-identical records, regardless of --threads.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "psd.hpp"
#include "cli_util.hpp"

namespace {

using namespace psd;

const char* kUsage =
    R"(psdsweep — declarative PSD campaign runner (grids -> JSONL)

grid axes (comma-separated; every axis defaults to one base value):
  --loads L1,L2,...        utilizations; < 1 reads as fraction, >= 1 as %
  --classes V1|V2|...      delta vectors, '|'-separated (e.g. '1,2|1,4|1,8')
  --backends B1,B2,...     dedicated | sfq | lottery | wtp | pad | hpd | strict
  --allocators A1,A2,...   psd | adaptive | equal | loadprop | none
  --dists D1;D2;...        ';'-separated specs (e.g. 'bp:1.5,0.1,100;det:1')
  --rate-changes R1,R2     rescale | finish
  --nodes N1,N2,...        cluster sizes (1 = single server)
  --policies P1,P2,...     random | rr | lwl | sita | jsq[d]
  --profiles S1;S2;...     ';'-separated nonstationary load profiles, times
                           in tu (e.g. 'none;spike:30000,5000,2' compares the
                           stationary control against a flash crowd)
  --admissions S1;S2;...   ';'-separated admission gates (e.g.
                           'admit-all;util;delta-aware' compares shedding
                           policies; any active gate lifts the load < 100%
                           cap, so overload factors go on --loads)

base workload (not an axis):
  --arrivals SPEC          poisson | det | mmpp:burst[,sojourn[,duty]]

protocol / execution:
  --runs N                 replications per point              (default 8)
  --lockstep K             run replications in lane-groups of K on the
                           lockstep batch kernel (same numbers and JSONL
                           bytes as the default per-task mode, just faster;
                           0 = per-task)                       (default 0)
  --seed N                 campaign master seed                (default 42)
  --measure TU             measurement length per replication  (default 60000)
  --warmup TU              warmup per replication              (default 10000)
  --threads N              pool workers; 0 = hardware          (default 0)

artifacts:
  --out PATH               append JSONL records (enables resume)
  --no-resume              re-run everything; truncates --out first
  --csv PATH               write a CSV pivot of all points
  --timing                 add wall_ms to records (breaks byte-identity)
  --spec FILE              read options from FILE first: 'key = value' lines
                           (keys = long option names without '--'; '#' comments;
                           command-line flags override the spec)
  --dry-run                print the expanded points and exit
  --quiet                  suppress per-point progress lines
  --progress               live ticker on stderr: done/total points,
                           points/s, replication count, ETA (reads the
                           campaign gauge; does not touch the JSONL)
  --help                   this text
)";

[[noreturn]] void usage(int code) {
  std::cout << kUsage;
  std::exit(code);
}

struct Options {
  GridSpec grid;
  CampaignOptions campaign;
  std::string csv_path;
  bool dry_run = false;
  bool quiet = false;
  bool progress = false;
};

void apply_option(Options& o, const std::string& key,
                  const std::string& value) {
  const std::string opt = "--" + key;
  if (key == "loads") {
    o.grid.loads.clear();
    for (double v : cli::parse_list(opt, value, "--loads 30,60,90")) {
      o.grid.loads.push_back(cli::normalize_load(opt, v));
    }
  } else if (key == "classes") {
    o.grid.deltas.clear();
    for (const auto& item : cli::split(value, '|')) {
      o.grid.deltas.push_back(
          cli::parse_list(opt, item, "--classes '1,2|1,4'"));
    }
  } else if (key == "backends") {
    o.grid.backends.clear();
    for (const auto& item : cli::split(value, ',')) {
      o.grid.backends.push_back(cli::parse_backend(opt, item));
    }
  } else if (key == "allocators") {
    o.grid.allocators.clear();
    for (const auto& item : cli::split(value, ',')) {
      o.grid.allocators.push_back(cli::parse_allocator(opt, item));
    }
  } else if (key == "dists") {
    o.grid.dists.clear();
    for (const auto& item : cli::split(value, ';')) {
      o.grid.dists.push_back(cli::parse_dist(opt, item));
    }
  } else if (key == "rate-changes") {
    o.grid.rate_changes.clear();
    for (const auto& item : cli::split(value, ',')) {
      o.grid.rate_changes.push_back(cli::parse_rate_change(opt, item));
    }
  } else if (key == "nodes") {
    o.grid.cluster_nodes.clear();
    for (double v : cli::parse_list(opt, value, "--nodes 1,4")) {
      if (v < 1.0 || v != static_cast<double>(static_cast<std::size_t>(v))) {
        cli::fail(opt + " expects positive integers", value, "--nodes 1,4");
      }
      o.grid.cluster_nodes.push_back(static_cast<std::size_t>(v));
    }
  } else if (key == "policies") {
    o.grid.cluster_policies.clear();
    for (const auto& item : cli::split(value, ',')) {
      const AssignmentSpec as = cli::parse_assignment(opt, item);
      o.grid.cluster_policies.push_back(as.policy);
      // The grid axis carries the policy only; a jsq token's sample width
      // lands on the base config (one d per campaign).
      if (as.policy == AssignmentPolicy::kJsq) {
        o.grid.base.cluster_jsq_d = as.d;
      }
    }
  } else if (key == "profiles") {
    o.grid.profiles.clear();
    for (const auto& item : cli::split(value, ';')) {
      o.grid.profiles.push_back(cli::parse_profile(opt, item));
    }
  } else if (key == "admissions") {
    o.grid.admissions.clear();
    for (const auto& item : cli::split(value, ';')) {
      o.grid.admissions.push_back(cli::parse_admission(opt, item));
    }
  } else if (key == "arrivals") {
    const ArrivalSpec a = cli::parse_arrival_spec(opt, value);
    o.grid.base.arrivals = a.kind;
    o.grid.base.burstiness = a.burstiness;
    o.grid.base.mmpp_sojourn = a.sojourn;
    o.grid.base.mmpp_duty = a.duty;
  } else if (key == "runs") {
    o.campaign.runs = static_cast<std::size_t>(
        cli::parse_uint(opt, value, "--runs 8"));
  } else if (key == "lockstep") {
    const std::size_t lanes = static_cast<std::size_t>(
        cli::parse_uint(opt, value, "--lockstep 8"));
    o.campaign.replication_mode =
        lanes > 1 ? ReplicationMode::kLockstep : ReplicationMode::kPerTask;
    o.campaign.lockstep_lanes = lanes;
  } else if (key == "seed") {
    o.campaign.master_seed = cli::parse_uint(opt, value, "--seed 42");
  } else if (key == "measure") {
    o.grid.base.measure_tu = cli::parse_double(opt, value, "--measure 60000");
  } else if (key == "warmup") {
    o.grid.base.warmup_tu = cli::parse_double(opt, value, "--warmup 10000");
  } else if (key == "threads") {
    o.campaign.threads = static_cast<std::size_t>(
        cli::parse_uint(opt, value, "--threads 8"));
  } else if (key == "out") {
    o.campaign.jsonl_path = value;
  } else if (key == "csv") {
    o.csv_path = value;
  } else {
    cli::fail("unknown option", opt, "see --help");
  }
}

void load_spec_file(Options& o, const std::string& path) {
  std::ifstream in(path);
  if (!in) cli::fail("cannot open spec file", path, "--spec campaigns/abl01.spec");
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto items = cli::split(line, '=');
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    if (items.size() != 2 || line.find('=') == std::string::npos) {
      cli::fail("spec line " + std::to_string(lineno) +
                    " is not 'key = value'",
                line, "loads = 30,60,90");
    }
    if (items[0] == "no-resume" || items[0] == "timing" ||
        items[0] == "spec") {
      cli::fail("spec line " + std::to_string(lineno) +
                    ": flag not allowed in spec files",
                items[0], "pass it on the command line");
    }
    apply_option(o, items[0], items[1]);
  }
}

void write_csv_pivot(const std::string& path, const CampaignResult& result) {
  std::ofstream csv(path);
  if (!csv) cli::fail("cannot open CSV pivot for writing", path, "--csv out.csv");
  csv << "key,load,backend,allocator,dist,delta,nodes,policy,rate_change,"
         "runs,skipped,system_slowdown,expected_system";
  // Widest class count decides the per-class column block.
  std::size_t classes = 0;
  for (const auto& p : result.points) {
    classes = std::max(classes, p.point.cfg.num_classes());
  }
  for (std::size_t i = 0; i < classes; ++i) {
    csv << ",s" << i + 1 << "_mean,s" << i + 1 << "_half,s" << i + 1
        << "_expected,ratio" << i + 1 << ",target" << i + 1;
  }
  csv << "\n";
  auto cell = [&](double v) {
    csv << ',';
    if (std::isfinite(v)) csv << json_number(v);
  };
  for (const auto& p : result.points) {
    const auto& cfg = p.point.cfg;
    std::string delta;
    for (std::size_t i = 0; i < cfg.delta.size(); ++i) {
      if (i > 0) delta += ':';
      delta += json_number(cfg.delta[i]);
    }
    csv << p.point.key << ',' << json_number(cfg.load) << ','
        << backend_name(cfg.backend) << ',' << allocator_name(cfg.allocator)
        // dist specs contain commas (bp:1.5,0.1,100) — CSV-quote them.
        << ',' << '"' << dist_name(cfg.size_dist) << '"' << ',' << delta << ','
        << cfg.cluster_nodes << ','
        << AssignmentSpec(cfg.cluster_policy, cfg.cluster_jsq_d).name()
        << ','
        << rate_change_name(cfg.rate_change) << ',' << p.result.runs << ','
        << (p.skipped ? 1 : 0);
    // Resumed points carry no in-memory results (their numbers live in the
    // JSONL from the earlier run); leave their result cells blank.
    cell(p.skipped ? kNaN : p.result.system_slowdown);
    cell(p.skipped ? kNaN : p.result.expected_system);
    for (std::size_t i = 0; i < classes; ++i) {
      if (i < cfg.num_classes() && !p.skipped) {
        cell(p.result.slowdown[i].mean);
        cell(p.result.slowdown[i].half_width);
        cell(p.result.expected[i]);
        cell(p.result.mean_ratio[i]);
        cell(cfg.delta[i] / cfg.delta[0]);
      } else {
        csv << ",,,,,";
      }
    }
    csv << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  try {
    // First pass: --spec files load in order, then flags override.
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--spec") {
        if (i + 1 >= argc) throw cli::CliError("--spec needs a file path");
        load_spec_file(o, argv[i + 1]);
      }
    }
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw cli::CliError(arg + " needs a value (see --help)");
        }
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") usage(0);
      else if (arg == "--spec") value();  // consumed in the first pass
      else if (arg == "--no-resume") o.campaign.resume = false;
      else if (arg == "--timing") o.campaign.timing = true;
      else if (arg == "--dry-run") o.dry_run = true;
      else if (arg == "--quiet") o.quiet = true;
      else if (arg == "--progress") o.progress = true;
      else if (arg.rfind("--", 0) == 0) apply_option(o, arg.substr(2), value());
      else cli::fail("unknown argument", arg, "see --help");
    }
  } catch (const cli::CliError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  try {
    if (o.dry_run) {
      const auto points = expand_grid(o.grid);
      std::cout << points.size() << " points:\n";
      for (const auto& p : points) {
        std::cout << "  " << p.key << "  " << p.label << "\n";
      }
      return 0;
    }

    const auto on_point = [&](const PointOutcome& p) {
      if (o.quiet) return;
      std::cout << (p.skipped ? "skip " : "done ") << p.point.key << "  "
                << p.point.label;
      if (!p.skipped) {
        std::printf("  S=[");
        for (std::size_t i = 0; i < p.result.slowdown.size(); ++i) {
          std::printf(i == 0 ? "%.3g" : " %.3g", p.result.slowdown[i].mean);
        }
        std::printf("]");
      }
      std::cout << "\n";
    };

    // The gauge is bumped by pool workers inside run_campaign; the ticker
    // reads it from this side on a fixed cadence.  ETA extrapolates from
    // executed points only (resumed points land instantly).
    CampaignGauge gauge;
    std::atomic<bool> ticker_stop{false};
    std::thread ticker;
    if (o.progress) {
      ticker = std::thread([&] {
        const auto start = std::chrono::steady_clock::now();
        while (!ticker_stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::seconds(1));
          const double elapsed =
              std::chrono::duration_cast<std::chrono::duration<double>>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          const std::uint64_t total = gauge.total.get();
          const std::uint64_t done = gauge.done();
          const std::uint64_t executed = gauge.executed.get();
          const double rate =
              elapsed > 0.0 ? static_cast<double>(executed) / elapsed : 0.0;
          if (rate > 0.0 && total > done) {
            std::fprintf(stderr,
                         "progress: %llu/%llu points, %llu reps, "
                         "%.2f points/s, ETA %.0fs\n",
                         static_cast<unsigned long long>(done),
                         static_cast<unsigned long long>(total),
                         static_cast<unsigned long long>(
                             gauge.replications.get()),
                         rate, static_cast<double>(total - done) / rate);
          } else {
            std::fprintf(stderr, "progress: %llu/%llu points, %llu reps\n",
                         static_cast<unsigned long long>(done),
                         static_cast<unsigned long long>(total),
                         static_cast<unsigned long long>(
                             gauge.replications.get()));
          }
        }
      });
    }

    CampaignResult result;
    try {
      result = run_campaign(o.grid, o.campaign, nullptr, on_point, &gauge);
    } catch (...) {
      if (ticker.joinable()) {
        ticker_stop.store(true, std::memory_order_relaxed);
        ticker.join();
      }
      throw;
    }
    if (ticker.joinable()) {
      ticker_stop.store(true, std::memory_order_relaxed);
      ticker.join();
    }

    if (!o.csv_path.empty()) write_csv_pivot(o.csv_path, result);

    std::printf(
        "\n%zu points (%zu executed, %zu resumed) x %zu runs on %zu threads "
        "in %.2fs — %.2f points/s, pool efficiency %.0f%%\n",
        result.points.size(), result.executed, result.skipped,
        o.campaign.runs, result.threads, result.wall_seconds,
        result.points_per_sec(), 100.0 * result.pool_efficiency());
    if (!o.campaign.jsonl_path.empty()) {
      std::cout << "JSONL: " << o.campaign.jsonl_path << "\n";
    }
    if (!o.csv_path.empty()) std::cout << "CSV pivot: " << o.csv_path << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
